//! Database instances, blocks, and repairs.
//!
//! A database instance is a finite set of facts. A *block* is a ⊆-maximal set
//! of facts of the same relation that agree on the primary key. A *repair*
//! picks exactly one fact from each block (equivalently: a ⊆-maximal
//! consistent subset). See Sections 1 and 3 of the paper.

use crate::delta::{DeltaEvent, DeltaOp};
use crate::error::DataError;
use crate::fact::Fact;
use crate::schema::{RelName, Schema};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Whether numeric columns are restricted to `Q≥0` (the paper's default) or
/// unconstrained (Section 7.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NumericDomain {
    /// Numeric columns only contain non-negative rationals (paper default).
    #[default]
    NonNegative,
    /// Numeric columns may contain arbitrary rationals (Section 7.3).
    Unconstrained,
}

/// A block: all facts of one relation that share a primary-key value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// The relation the block belongs to.
    pub relation: RelName,
    /// The shared key value.
    pub key: Vec<Value>,
    /// The facts in the block (at least one).
    pub facts: Vec<Fact>,
}

impl Block {
    /// Number of facts in the block.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// A block never has zero facts; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Returns `true` if the block contains more than one fact (i.e. violates
    /// the primary key).
    pub fn is_inconsistent(&self) -> bool {
        self.facts.len() > 1
    }
}

/// An in-memory database instance: a schema plus a set of facts per relation.
///
/// Per-relation fact sets are **structurally shared**: each relation's facts
/// live behind an [`Arc`], so cloning an instance is one pointer bump per
/// relation, and a mutation copies only the fact set of the relation it
/// touches (clone-on-write via [`Arc::make_mut`]). The serving layer relies
/// on this to derive successor snapshots in `O(|dirty relation| + |delta|)`
/// instead of `O(|db|)`: every untouched relation of the successor shares
/// storage with the base snapshot. Equality still compares contents, not
/// pointers.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct DatabaseInstance {
    schema: Schema,
    domain: NumericDomain,
    relations: BTreeMap<RelName, Arc<BTreeSet<Fact>>>,
}

impl DatabaseInstance {
    /// Creates an empty instance over `schema` with numeric columns restricted
    /// to `Q≥0`.
    pub fn new(schema: Schema) -> DatabaseInstance {
        DatabaseInstance {
            schema,
            domain: NumericDomain::NonNegative,
            relations: BTreeMap::new(),
        }
    }

    /// Creates an empty instance whose numeric columns are unconstrained
    /// (Section 7.3 of the paper).
    pub fn new_unconstrained(schema: Schema) -> DatabaseInstance {
        DatabaseInstance {
            schema,
            domain: NumericDomain::Unconstrained,
            relations: BTreeMap::new(),
        }
    }

    /// The schema of the instance.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The numeric-domain mode of the instance.
    pub fn numeric_domain(&self) -> NumericDomain {
        self.domain
    }

    /// Validates a fact against the schema without inserting it.
    pub fn validate(&self, fact: &Fact) -> Result<(), DataError> {
        let sig = self.schema.expect_signature(fact.relation())?;
        if fact.arity() != sig.arity() {
            return Err(DataError::ArityMismatch {
                relation: fact.relation().to_string(),
                expected: sig.arity(),
                found: fact.arity(),
            });
        }
        for &p in sig.numeric_positions() {
            match fact.arg(p) {
                Value::Num(r) => {
                    if self.domain == NumericDomain::NonNegative && !r.is_non_negative() {
                        return Err(DataError::NegativeValue {
                            relation: fact.relation().to_string(),
                            position: p,
                        });
                    }
                }
                Value::Text(_) => {
                    return Err(DataError::NonNumericValue {
                        relation: fact.relation().to_string(),
                        position: p,
                    })
                }
            }
        }
        Ok(())
    }

    /// Inserts a fact, validating it against the schema.
    ///
    /// Returns `true` if the fact was not already present. A no-op insert (the
    /// fact is already there) leaves the relation's shared storage untouched.
    pub fn insert(&mut self, fact: Fact) -> Result<bool, DataError> {
        self.validate(&fact)?;
        let name = self
            .schema
            .intern(fact.relation())
            .expect("validated relation exists");
        let set = self.relations.entry(name).or_default();
        if set.contains(&fact) {
            return Ok(false);
        }
        Ok(Arc::make_mut(set).insert(fact))
    }

    /// Inserts many facts.
    pub fn insert_all(&mut self, facts: impl IntoIterator<Item = Fact>) -> Result<(), DataError> {
        for f in facts {
            self.insert(f)?;
        }
        Ok(())
    }

    /// Builder-style insertion; panics on schema violations (intended for
    /// examples and tests).
    pub fn with_fact(mut self, fact: Fact) -> DatabaseInstance {
        self.insert(fact).expect("fact conforms to schema");
        self
    }

    /// Applies one change event: inserts or deletes its fact. Returns the
    /// event back when the mutation was effective (the insert was new / the
    /// deleted fact was present), so callers maintaining derived structures
    /// can replay exactly the mutations that happened.
    pub fn apply(&mut self, event: DeltaEvent) -> Result<Option<DeltaEvent>, DataError> {
        let effective = match event.op {
            DeltaOp::Insert => self.insert(event.fact.clone())?,
            DeltaOp::Delete => self.remove(&event.fact),
        };
        Ok(effective.then_some(event))
    }

    /// Removes a fact. Returns `true` if it was present. Deleting the last
    /// fact of a relation removes the relation's (now empty) entry entirely,
    /// so an emptied-then-repopulated instance is indistinguishable — by
    /// `==`, iteration, and derived structures — from one built fresh. A
    /// no-op removal leaves the relation's shared storage untouched.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        let Some(set) = self.relations.get_mut(fact.relation()) else {
            return false;
        };
        if !set.contains(fact) {
            return false;
        }
        let removed = Arc::make_mut(set).remove(fact);
        if set.is_empty() {
            self.relations.remove(fact.relation());
        }
        removed
    }

    /// Returns `true` if the named relation's fact set is physically shared
    /// (same allocation) between `self` and `other` — i.e. neither instance
    /// has copied it since they diverged. Both instances lacking the entry
    /// counts as shared (there is nothing to copy). For tests and
    /// observability of the clone-on-write contract.
    pub fn shares_relation_storage(&self, other: &DatabaseInstance, name: &str) -> bool {
        match (self.relations.get(name), other.relations.get(name)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Returns `true` if the fact is present.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.relations
            .get(fact.relation())
            .map(|set| set.contains(fact))
            .unwrap_or(false)
    }

    /// The facts of relation `name` (empty iterator if none).
    pub fn facts_of(&self, name: &str) -> impl Iterator<Item = &Fact> {
        self.relations.get(name).into_iter().flat_map(|s| s.iter())
    }

    /// All facts of the instance.
    pub fn facts(&self) -> impl Iterator<Item = &Fact> {
        self.relations.values().flat_map(|s| s.iter())
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.relations.values().map(|s| s.len()).sum()
    }

    /// Returns `true` if the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(|s| s.is_empty())
    }

    /// The blocks of relation `name`.
    pub fn blocks_of(&self, name: &str) -> Vec<Block> {
        let Some(sig) = self.schema.signature(name) else {
            return Vec::new();
        };
        let Some(facts) = self.relations.get(name) else {
            return Vec::new();
        };
        // Facts are stored sorted and the key is an args prefix, so facts of
        // a block are contiguous: one linear run-scan groups them with a
        // single key allocation per block (no `BTreeMap<Vec<Value>, _>`
        // probing and re-cloning of every key).
        let rel = self.schema.intern(name).expect("relation in schema");
        let mut blocks: Vec<Block> = Vec::new();
        for f in facts.iter() {
            match blocks.last_mut() {
                Some(b) if b.key.as_slice() == f.key(sig) => b.facts.push(f.clone()),
                _ => blocks.push(Block {
                    relation: rel.clone(),
                    key: f.key(sig).to_vec(),
                    facts: vec![f.clone()],
                }),
            }
        }
        blocks
    }

    /// All blocks of the instance, grouped per relation, in relation-name
    /// order.
    pub fn blocks(&self) -> Vec<Block> {
        let names: Vec<RelName> = self.relations.keys().cloned().collect();
        names.iter().flat_map(|n| self.blocks_of(n)).collect()
    }

    /// Returns `true` if the instance satisfies all primary keys.
    pub fn is_consistent(&self) -> bool {
        self.blocks().iter().all(|b| !b.is_inconsistent())
    }

    /// Number of blocks that violate their primary key.
    pub fn inconsistent_block_count(&self) -> usize {
        self.blocks().iter().filter(|b| b.is_inconsistent()).count()
    }

    /// The number of repairs of the instance, i.e. the product of block sizes.
    ///
    /// Returns `None` on overflow (more than `u128::MAX` repairs).
    pub fn repair_count(&self) -> Option<u128> {
        let mut count: u128 = 1;
        for b in self.blocks() {
            count = count.checked_mul(b.len() as u128)?;
        }
        Some(count)
    }

    /// Iterates over all repairs of the instance.
    ///
    /// Each repair is itself a (consistent) [`DatabaseInstance`] over the same
    /// schema. The number of repairs is exponential in the number of
    /// inconsistent blocks; this iterator is intended for ground-truth
    /// baselines and tests on small instances.
    pub fn repairs(&self) -> RepairIter<'_> {
        RepairIter::new(self)
    }

    /// The active domain: every constant appearing in the instance.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.facts()
            .flat_map(|f| f.args().iter().cloned())
            .collect()
    }

    /// Returns one (arbitrary, deterministic) repair: the first fact of each
    /// block in sorted order.
    pub fn any_repair(&self) -> DatabaseInstance {
        let mut r = DatabaseInstance {
            schema: self.schema.clone(),
            domain: self.domain,
            relations: BTreeMap::new(),
        };
        for b in self.blocks() {
            let f = b.facts[0].clone();
            Arc::make_mut(r.relations.entry(b.relation.clone()).or_default()).insert(f);
        }
        r
    }

    fn with_facts(&self, facts: impl IntoIterator<Item = Fact>) -> DatabaseInstance {
        let mut r = DatabaseInstance {
            schema: self.schema.clone(),
            domain: self.domain,
            relations: BTreeMap::new(),
        };
        for f in facts {
            let name = self
                .schema
                .intern(f.relation())
                .expect("fact relation in schema");
            Arc::make_mut(r.relations.entry(name).or_default()).insert(f);
        }
        r
    }
}

impl fmt::Debug for DatabaseInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DatabaseInstance {{")?;
        for (name, facts) in &self.relations {
            writeln!(f, "  {name}: {} facts", facts.len())?;
            for fact in facts.iter() {
                writeln!(f, "    {fact}")?;
            }
        }
        write!(f, "}}")
    }
}

/// Iterator over all repairs of a database instance.
pub struct RepairIter<'a> {
    instance: &'a DatabaseInstance,
    blocks: Vec<Block>,
    /// Odometer over block choices; `None` once exhausted.
    indices: Option<Vec<usize>>,
}

impl<'a> RepairIter<'a> {
    fn new(instance: &'a DatabaseInstance) -> RepairIter<'a> {
        let blocks = instance.blocks();
        RepairIter {
            instance,
            indices: Some(vec![0; blocks.len()]),
            blocks,
        }
    }

    /// Total number of repairs this iterator will yield, if it fits in u128.
    pub fn count_exact(&self) -> Option<u128> {
        let mut count: u128 = 1;
        for b in &self.blocks {
            count = count.checked_mul(b.len() as u128)?;
        }
        Some(count)
    }
}

impl Iterator for RepairIter<'_> {
    type Item = DatabaseInstance;

    fn next(&mut self) -> Option<Self::Item> {
        let indices = self.indices.as_mut()?;
        let facts: Vec<Fact> = self
            .blocks
            .iter()
            .zip(indices.iter())
            .map(|(b, &i)| b.facts[i].clone())
            .collect();
        // Advance the odometer.
        let mut pos = self.blocks.len();
        loop {
            if pos == 0 {
                self.indices = None;
                break;
            }
            pos -= 1;
            let idx = &mut self.indices.as_mut().unwrap()[pos];
            *idx += 1;
            if *idx < self.blocks[pos].len() {
                break;
            }
            self.indices.as_mut().unwrap()[pos] = 0;
        }
        Some(self.instance.with_facts(facts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact;
    use crate::schema::Signature;

    fn stock_schema() -> Schema {
        Schema::new()
            .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
            .with_relation("Stock", Signature::new(3, 2, [2]).unwrap())
    }

    /// The database instance of Fig. 1 in the paper.
    pub(crate) fn db_stock() -> DatabaseInstance {
        let mut db = DatabaseInstance::new(stock_schema());
        db.insert_all([
            fact!("Dealers", "Smith", "Boston"),
            fact!("Dealers", "Smith", "New York"),
            fact!("Dealers", "James", "Boston"),
            fact!("Stock", "Tesla X", "Boston", 35),
            fact!("Stock", "Tesla X", "Boston", 40),
            fact!("Stock", "Tesla Y", "Boston", 35),
            fact!("Stock", "Tesla Y", "New York", 95),
            fact!("Stock", "Tesla Y", "New York", 96),
        ])
        .unwrap();
        db
    }

    #[test]
    fn insertion_and_validation() {
        let mut db = DatabaseInstance::new(stock_schema());
        assert!(db.insert(fact!("Dealers", "Smith", "Boston")).unwrap());
        // duplicate insert
        assert!(!db.insert(fact!("Dealers", "Smith", "Boston")).unwrap());
        // wrong arity
        assert!(matches!(
            db.insert(fact!("Dealers", "Smith")),
            Err(DataError::ArityMismatch { .. })
        ));
        // unknown relation
        assert!(matches!(
            db.insert(fact!("Nope", "x")),
            Err(DataError::UnknownRelation(_))
        ));
        // non-numeric value in numeric column
        assert!(matches!(
            db.insert(fact!("Stock", "Tesla X", "Boston", "many")),
            Err(DataError::NonNumericValue { .. })
        ));
        // negative value rejected under Q>=0
        assert!(matches!(
            db.insert(fact!("Stock", "Tesla X", "Boston", -1)),
            Err(DataError::NegativeValue { .. })
        ));
        // negative value allowed when unconstrained
        let mut db2 = DatabaseInstance::new_unconstrained(stock_schema());
        assert!(db2.insert(fact!("Stock", "Tesla X", "Boston", -1)).is_ok());
    }

    #[test]
    fn blocks_of_fig1() {
        let db = db_stock();
        assert_eq!(db.len(), 8);
        let dealer_blocks = db.blocks_of("Dealers");
        assert_eq!(dealer_blocks.len(), 2);
        let stock_blocks = db.blocks_of("Stock");
        assert_eq!(stock_blocks.len(), 3);
        assert_eq!(db.blocks().len(), 5);
        assert!(!db.is_consistent());
        assert_eq!(db.inconsistent_block_count(), 3);
    }

    #[test]
    fn repairs_of_fig1() {
        let db = db_stock();
        assert_eq!(db.repair_count(), Some(8));
        let repairs: Vec<_> = db.repairs().collect();
        assert_eq!(repairs.len(), 8);
        for r in &repairs {
            assert!(r.is_consistent());
            assert_eq!(r.len(), 5);
            // Every repair is a subset of the original instance.
            assert!(r.facts().all(|f| db.contains(f)));
        }
        // All repairs are distinct.
        for i in 0..repairs.len() {
            for j in (i + 1)..repairs.len() {
                assert_ne!(repairs[i], repairs[j]);
            }
        }
    }

    #[test]
    fn consistent_instance_has_one_repair() {
        let mut db = DatabaseInstance::new(stock_schema());
        db.insert(fact!("Dealers", "Smith", "Boston")).unwrap();
        db.insert(fact!("Dealers", "James", "Boston")).unwrap();
        assert!(db.is_consistent());
        assert_eq!(db.repair_count(), Some(1));
        let repairs: Vec<_> = db.repairs().collect();
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0], db);
    }

    #[test]
    fn empty_instance() {
        let db = DatabaseInstance::new(stock_schema());
        assert!(db.is_empty());
        assert!(db.is_consistent());
        assert_eq!(db.repair_count(), Some(1));
        assert_eq!(db.repairs().count(), 1);
        assert!(db.active_domain().is_empty());
    }

    #[test]
    fn active_domain_and_any_repair() {
        let db = db_stock();
        let adom = db.active_domain();
        assert!(adom.contains(&Value::text("Boston")));
        assert!(adom.contains(&Value::int(96)));
        let r = db.any_repair();
        assert!(r.is_consistent());
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn apply_reports_effective_mutations() {
        let mut db = db_stock();
        let f = fact!("Dealers", "Jones", "Chicago");
        // A fresh insert is effective; repeating it is not.
        assert!(db.apply(DeltaEvent::insert(f.clone())).unwrap().is_some());
        assert!(db.apply(DeltaEvent::insert(f.clone())).unwrap().is_none());
        assert!(db.contains(&f));
        // Deleting it is effective once.
        assert!(db.apply(DeltaEvent::delete(f.clone())).unwrap().is_some());
        assert!(db.apply(DeltaEvent::delete(f.clone())).unwrap().is_none());
        assert!(!db.contains(&f));
        // Inserts are still validated.
        assert!(db.apply(DeltaEvent::insert(fact!("Dealers", "x"))).is_err());
    }

    #[test]
    fn clones_share_untouched_relations() {
        let db = db_stock();
        let mut clone = db.clone();
        assert!(db.shares_relation_storage(&clone, "Dealers"));
        assert!(db.shares_relation_storage(&clone, "Stock"));
        // A write path-copies only the relation it touches.
        clone.insert(fact!("Dealers", "Lopez", "Chicago")).unwrap();
        assert!(!db.shares_relation_storage(&clone, "Dealers"));
        assert!(db.shares_relation_storage(&clone, "Stock"));
        assert!(!db.contains(&fact!("Dealers", "Lopez", "Chicago")));
        // No-op mutations (duplicate insert, absent delete) copy nothing.
        let mut noop = db.clone();
        assert!(!noop.insert(fact!("Dealers", "Smith", "Boston")).unwrap());
        assert!(!noop.remove(&fact!("Dealers", "Nobody", "Nowhere")));
        assert!(db.shares_relation_storage(&noop, "Dealers"));
        assert!(db.shares_relation_storage(&noop, "Stock"));
    }

    #[test]
    fn emptied_relation_leaves_no_residue() {
        let mut db = DatabaseInstance::new(stock_schema());
        db.insert(fact!("Dealers", "Smith", "Boston")).unwrap();
        let fresh = DatabaseInstance::new(stock_schema());
        assert_ne!(db, fresh);
        // Deleting the last fact must make the instance equal to (and
        // structurally indistinguishable from) a never-populated one: the
        // old code left an empty `relations` entry behind.
        assert!(db.remove(&fact!("Dealers", "Smith", "Boston")));
        assert_eq!(db, fresh);
        assert!(db.shares_relation_storage(&fresh, "Dealers"));
        assert_eq!(db.blocks().len(), 0);
        // Repopulating keeps working.
        db.insert(fact!("Dealers", "James", "Boston")).unwrap();
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn remove_and_contains() {
        let mut db = db_stock();
        let f = fact!("Dealers", "Smith", "New York");
        assert!(db.contains(&f));
        assert!(db.remove(&f));
        assert!(!db.contains(&f));
        assert!(!db.remove(&f));
        assert_eq!(db.len(), 7);
    }
}
