//! Relation signatures and database schemas.
//!
//! Every relation name is associated with a *signature* `(n, k, J)` where `n`
//! is the arity, positions `1..=k` form the primary key, and `J` is the set of
//! numerical positions (Section 3 of the paper). Positions are 0-based in the
//! implementation.

use crate::error::DataError;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Interned relation name.
pub type RelName = Arc<str>;

/// The signature `(n, k, J)` of a relation name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature {
    arity: usize,
    key_len: usize,
    numeric: BTreeSet<usize>,
}

impl Signature {
    /// Creates a signature with `arity` columns, the first `key_len` of which
    /// form the primary key, and `numeric` listing the 0-based numerical
    /// positions.
    pub fn new(
        arity: usize,
        key_len: usize,
        numeric: impl IntoIterator<Item = usize>,
    ) -> Result<Signature, DataError> {
        if key_len > arity {
            return Err(DataError::InvalidSignature(format!(
                "key length {key_len} exceeds arity {arity}"
            )));
        }
        let numeric: BTreeSet<usize> = numeric.into_iter().collect();
        if let Some(&p) = numeric.iter().find(|&&p| p >= arity) {
            return Err(DataError::InvalidSignature(format!(
                "numeric position {p} exceeds arity {arity}"
            )));
        }
        Ok(Signature {
            arity,
            key_len,
            numeric,
        })
    }

    /// Signature with no numerical positions.
    pub fn plain(arity: usize, key_len: usize) -> Result<Signature, DataError> {
        Signature::new(arity, key_len, [])
    }

    /// The arity `n`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of key positions `k` (the key is the prefix `0..k`).
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// The key positions `0..k`.
    pub fn key_positions(&self) -> std::ops::Range<usize> {
        0..self.key_len
    }

    /// The non-key positions `k..n`.
    pub fn non_key_positions(&self) -> std::ops::Range<usize> {
        self.key_len..self.arity
    }

    /// The numerical positions `J`.
    pub fn numeric_positions(&self) -> &BTreeSet<usize> {
        &self.numeric
    }

    /// Returns `true` if position `p` is numerical.
    pub fn is_numeric(&self, p: usize) -> bool {
        self.numeric.contains(&p)
    }

    /// Returns `true` if the relation is *full-key* (`n == k`).
    pub fn is_full_key(&self) -> bool {
        self.arity == self.key_len
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(arity={}, key={}, numeric={:?})",
            self.arity, self.key_len, self.numeric
        )
    }
}

/// A database schema: a mapping from relation names to signatures.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    relations: BTreeMap<RelName, Signature>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Adds (or replaces) a relation with the given signature.
    pub fn add_relation(&mut self, name: impl AsRef<str>, sig: Signature) -> &mut Self {
        self.relations.insert(Arc::from(name.as_ref()), sig);
        self
    }

    /// Builder-style variant of [`Schema::add_relation`].
    pub fn with_relation(mut self, name: impl AsRef<str>, sig: Signature) -> Self {
        self.add_relation(name, sig);
        self
    }

    /// Returns the signature of `name`, if declared.
    pub fn signature(&self, name: &str) -> Option<&Signature> {
        self.relations.get(name)
    }

    /// Returns the signature of `name` or an error.
    pub fn expect_signature(&self, name: &str) -> Result<&Signature, DataError> {
        self.signature(name)
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// Iterates over `(name, signature)` pairs in name order.
    pub fn relations(&self) -> impl Iterator<Item = (&RelName, &Signature)> {
        self.relations.iter()
    }

    /// Returns the interned relation name equal to `name`, if declared.
    pub fn intern(&self, name: &str) -> Option<RelName> {
        self.relations.get_key_value(name).map(|(k, _)| k.clone())
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Returns `true` if no relation is declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Returns `true` if the relation `name` is declared.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_validation() {
        assert!(Signature::new(3, 4, []).is_err());
        assert!(Signature::new(3, 2, [3]).is_err());
        let s = Signature::new(3, 2, [2]).unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.key_len(), 2);
        assert!(s.is_numeric(2));
        assert!(!s.is_numeric(0));
        assert!(!s.is_full_key());
        assert!(Signature::plain(2, 2).unwrap().is_full_key());
        assert_eq!(s.key_positions().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(s.non_key_positions().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn schema_lookup() {
        let mut schema = Schema::new();
        schema.add_relation("R", Signature::new(2, 1, []).unwrap());
        schema.add_relation("S", Signature::new(4, 2, [3]).unwrap());
        assert!(schema.contains("R"));
        assert!(!schema.contains("T"));
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.signature("S").unwrap().arity(), 4);
        assert!(schema.expect_signature("T").is_err());
        let names: Vec<&str> = schema.relations().map(|(n, _)| n.as_ref()).collect();
        assert_eq!(names, vec!["R", "S"]);
    }

    #[test]
    fn builder_style() {
        let schema = Schema::new()
            .with_relation("A", Signature::plain(1, 1).unwrap())
            .with_relation("B", Signature::plain(2, 1).unwrap());
        assert_eq!(schema.len(), 2);
        assert!(schema.intern("A").is_some());
        assert!(schema.intern("Z").is_none());
    }
}
