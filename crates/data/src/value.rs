//! Constants that may appear in database facts.
//!
//! The paper's domain `dom` contains arbitrary constants and includes the
//! non-negative rationals (Section 3). We model constants as either symbolic
//! text values or exact rationals. Ordering is total (numbers sort before
//! text), which is needed for the lexicographic tie-breaking order `⪯` used in
//! the rewriting of Fig. 5.

use crate::rational::Rational;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A constant from the database domain.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A symbolic (non-numeric) constant such as `"Boston"` or `a1`.
    Text(Arc<str>),
    /// A numeric constant (exact rational).
    Num(Rational),
}

impl Value {
    /// Creates a symbolic constant.
    pub fn text(s: impl AsRef<str>) -> Value {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// Creates a numeric constant from an integer.
    pub fn int(i: i64) -> Value {
        Value::Num(Rational::from_int(i))
    }

    /// Creates a numeric constant from a rational.
    pub fn num(r: Rational) -> Value {
        Value::Num(r)
    }

    /// Returns the numeric content, if this is a number.
    pub fn as_num(&self) -> Option<Rational> {
        match self {
            Value::Num(r) => Some(*r),
            Value::Text(_) => None,
        }
    }

    /// Returns the textual content, if this is a symbolic constant.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            Value::Num(_) => None,
        }
    }

    /// Returns `true` if this is a numeric constant.
    pub fn is_num(&self) -> bool {
        matches!(self, Value::Num(_))
    }

    /// Returns `true` if this is a numeric constant in `Q≥0`.
    pub fn is_non_negative_num(&self) -> bool {
        matches!(self, Value::Num(r) if r.is_non_negative())
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Num(a), Value::Num(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Num(_), Value::Text(_)) => Ordering::Less,
            (Value::Text(_), Value::Num(_)) => Ordering::Greater,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => write!(f, "{s}"),
            Value::Num(r) => write!(f, "{r}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Num(r) => write!(f, "{r}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::text(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(Arc::from(s.as_str()))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::int(i as i64)
    }
}

impl From<Rational> for Value {
    fn from(r: Rational) -> Self {
        Value::Num(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::{rat, ratio};

    #[test]
    fn constructors_and_accessors() {
        let t = Value::text("Boston");
        assert_eq!(t.as_text(), Some("Boston"));
        assert_eq!(t.as_num(), None);
        assert!(!t.is_num());

        let n = Value::int(35);
        assert_eq!(n.as_num(), Some(rat(35)));
        assert!(n.is_num());
        assert!(n.is_non_negative_num());
        assert!(!Value::int(-1).is_non_negative_num());
    }

    #[test]
    fn ordering_numbers_before_text() {
        let mut vals = vec![
            Value::text("a"),
            Value::int(5),
            Value::text("b"),
            Value::int(2),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::int(2),
                Value::int(5),
                Value::text("a"),
                Value::text("b")
            ]
        );
    }

    #[test]
    fn display() {
        assert_eq!(Value::text("x").to_string(), "x");
        assert_eq!(Value::num(ratio(1, 2)).to_string(), "1/2");
        assert_eq!(format!("{:?}", Value::text("x")), "\"x\"");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("a"), Value::text("a"));
        assert_eq!(Value::from(3i64), Value::int(3));
        assert_eq!(Value::from(rat(4)), Value::int(4));
        assert_eq!(Value::from(String::from("s")), Value::text("s"));
    }
}
