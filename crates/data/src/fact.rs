//! Facts: ground atoms stored in a database instance.

use crate::schema::{RelName, Signature};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A fact `R(v1, ..., vn)`: an atom without variables.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    relation: RelName,
    args: Vec<Value>,
}

impl Fact {
    /// Creates a fact for relation `relation` with the given arguments.
    pub fn new(relation: impl AsRef<str>, args: impl IntoIterator<Item = Value>) -> Fact {
        Fact {
            relation: Arc::from(relation.as_ref()),
            args: args.into_iter().collect(),
        }
    }

    /// The relation name of the fact.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The interned relation name.
    pub fn relation_name(&self) -> &RelName {
        &self.relation
    }

    /// The arguments of the fact.
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// The arity of the fact.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The argument at position `p`.
    pub fn arg(&self, p: usize) -> &Value {
        &self.args[p]
    }

    /// The key part of the fact, given the relation's signature.
    pub fn key(&self, sig: &Signature) -> &[Value] {
        &self.args[..sig.key_len()]
    }

    /// The non-key part of the fact, given the relation's signature.
    pub fn non_key(&self, sig: &Signature) -> &[Value] {
        &self.args[sig.key_len()..]
    }

    /// Two facts are *key-equal* if they have the same relation name and agree
    /// on the primary-key positions.
    pub fn key_equal(&self, other: &Fact, sig: &Signature) -> bool {
        self.relation == other.relation && self.key(sig) == other.key(sig)
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Convenience macro for building a [`Fact`].
///
/// ```
/// use rcqa_data::fact;
/// let f = fact!("Stock", "Tesla X", "Boston", 35);
/// assert_eq!(f.relation(), "Stock");
/// assert_eq!(f.arity(), 3);
/// ```
#[macro_export]
macro_rules! fact {
    ($rel:expr $(, $arg:expr)* $(,)?) => {
        $crate::fact::Fact::new($rel, vec![$($crate::value::Value::from($arg)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Signature;

    #[test]
    fn key_and_nonkey() {
        let sig = Signature::new(3, 2, [2]).unwrap();
        let f = fact!("Stock", "Tesla X", "Boston", 35);
        assert_eq!(
            f.key(&sig),
            &[Value::text("Tesla X"), Value::text("Boston")]
        );
        assert_eq!(f.non_key(&sig), &[Value::int(35)]);
        assert_eq!(f.arg(2), &Value::int(35));
    }

    #[test]
    fn key_equality() {
        let sig = Signature::new(3, 2, [2]).unwrap();
        let a = fact!("Stock", "Tesla X", "Boston", 35);
        let b = fact!("Stock", "Tesla X", "Boston", 40);
        let c = fact!("Stock", "Tesla Y", "Boston", 35);
        let d = fact!("Other", "Tesla X", "Boston", 35);
        assert!(a.key_equal(&b, &sig));
        assert!(!a.key_equal(&c, &sig));
        assert!(!a.key_equal(&d, &sig));
    }

    #[test]
    fn display() {
        let f = fact!("Dealers", "Smith", "Boston");
        assert_eq!(f.to_string(), "Dealers(Smith, Boston)");
    }
}
