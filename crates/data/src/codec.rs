//! Hand-rolled binary codecs for the durable serving layer.
//!
//! The workspace builds offline (no `serde`, no `bincode` — see
//! `crates/shims`), so the write-ahead log in `rcqa-wal` serialises facts
//! with these explicit, versioned byte layouts. The format is
//! **self-describing** (no schema needed to decode) and **exact**:
//! [`Rational`]s round-trip as their raw `i128` numerator/denominator pairs,
//! never through text or floating point.
//!
//! ## Byte layout
//!
//! All integers are little-endian. Strings are UTF-8.
//!
//! ```text
//! value   := 0x00 string            — Value::Text
//!          | 0x01 i128 i128         — Value::Num (numerator, denominator)
//! string  := [len: u32] [len bytes]
//! fact    := string                 — relation name
//!            [arity: u32] value*    — arguments
//! event   := [op: u8] fact          — 0x00 insert, 0x01 delete
//! ```
//!
//! Integrity is the **caller's** job: these codecs define layout only. The
//! WAL wraps every record in a length prefix and a CRC32 (see `rcqa-wal`),
//! so a [`DecodeError`] on checksum-valid bytes indicates real corruption,
//! not a torn write.

use crate::delta::{DeltaEvent, DeltaOp};
use crate::fact::Fact;
use crate::rational::Rational;
use crate::value::Value;
use std::fmt;

/// Value tag byte for [`Value::Text`].
const TAG_TEXT: u8 = 0x00;
/// Value tag byte for [`Value::Num`].
const TAG_NUM: u8 = 0x01;
/// Op tag byte for [`DeltaOp::Insert`].
const TAG_INSERT: u8 = 0x00;
/// Op tag byte for [`DeltaOp::Delete`].
const TAG_DELETE: u8 = 0x01;

/// A structural decode failure: the bytes do not describe a well-formed
/// value/fact/event.
///
/// `offset` is the position *within the decoded buffer* where the problem was
/// detected, so callers layering framing on top (the WAL) can report absolute
/// file offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset into the buffer where decoding failed.
    pub offset: usize,
    /// What was wrong at that offset.
    pub detail: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.detail)
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over an immutable byte buffer, tracking the read offset for
/// error reporting.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// The current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn err(&self, detail: &'static str) -> DecodeError {
        DecodeError {
            offset: self.pos,
            detail,
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(self.err(what)),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "unexpected end of buffer reading u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4, "unexpected end of buffer reading u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8, "unexpected end of buffer reading u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i128`.
    pub fn i128(&mut self) -> Result<i128, DecodeError> {
        let b = self.take(16, "unexpected end of buffer reading i128")?;
        Ok(i128::from_le_bytes(b.try_into().expect("16 bytes")))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<&'a str, DecodeError> {
        let at = self.pos;
        let len = self.u32()? as usize;
        let bytes = self.take(len, "string extends past end of buffer")?;
        std::str::from_utf8(bytes).map_err(|_| DecodeError {
            offset: at,
            detail: "string is not valid UTF-8",
        })
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn encode_string(s: &str, out: &mut Vec<u8>) {
    debug_assert!(s.len() <= u32::MAX as usize, "string too long to encode");
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Appends one [`Value`].
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Text(s) => {
            out.push(TAG_TEXT);
            encode_string(s, out);
        }
        Value::Num(r) => {
            out.push(TAG_NUM);
            out.extend_from_slice(&r.numerator().to_le_bytes());
            out.extend_from_slice(&r.denominator().to_le_bytes());
        }
    }
}

/// Decodes one [`Value`].
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value, DecodeError> {
    let at = r.position();
    match r.u8()? {
        TAG_TEXT => Ok(Value::text(r.string()?)),
        TAG_NUM => {
            let num = r.i128()?;
            let den = r.i128()?;
            let rational = Rational::new(num, den).map_err(|_| DecodeError {
                offset: at,
                detail: "rational has no i128 normal form",
            })?;
            // Encoded rationals are always in normal form (the type invariant
            // guarantees it), so a non-normal pair here is corruption that
            // happened to survive the CRC — reject rather than silently
            // repair.
            if rational.numerator() != num || rational.denominator() != den {
                return Err(DecodeError {
                    offset: at,
                    detail: "rational is not in normal form",
                });
            }
            Ok(Value::Num(rational))
        }
        _ => Err(DecodeError {
            offset: at,
            detail: "unknown value tag",
        }),
    }
}

/// Appends one [`Fact`].
pub fn encode_fact(fact: &Fact, out: &mut Vec<u8>) {
    encode_string(fact.relation(), out);
    out.extend_from_slice(&(fact.arity() as u32).to_le_bytes());
    for arg in fact.args() {
        encode_value(arg, out);
    }
}

/// Decodes one [`Fact`].
pub fn decode_fact(r: &mut Reader<'_>) -> Result<Fact, DecodeError> {
    let relation = r.string()?.to_string();
    let at = r.position();
    let arity = r.u32()? as usize;
    // An arity prefix cannot promise more values than one byte each could
    // fit in the rest of the buffer; checking up front keeps a corrupt
    // prefix from reserving absurd capacity.
    if arity > r.buf.len() - r.position() {
        return Err(DecodeError {
            offset: at,
            detail: "fact arity exceeds remaining buffer",
        });
    }
    let mut args = Vec::with_capacity(arity);
    for _ in 0..arity {
        args.push(decode_value(r)?);
    }
    Ok(Fact::new(relation, args))
}

/// Appends one [`DeltaEvent`].
pub fn encode_event(event: &DeltaEvent, out: &mut Vec<u8>) {
    out.push(match event.op {
        DeltaOp::Insert => TAG_INSERT,
        DeltaOp::Delete => TAG_DELETE,
    });
    encode_fact(&event.fact, out);
}

/// Decodes one [`DeltaEvent`].
pub fn decode_event(r: &mut Reader<'_>) -> Result<DeltaEvent, DecodeError> {
    let at = r.position();
    let op = match r.u8()? {
        TAG_INSERT => DeltaOp::Insert,
        TAG_DELETE => DeltaOp::Delete,
        _ => {
            return Err(DecodeError {
                offset: at,
                detail: "unknown delta-op tag",
            })
        }
    };
    Ok(DeltaEvent {
        op,
        fact: decode_fact(r)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact;
    use crate::rational::ratio;

    fn roundtrip_value(v: Value) {
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_value(&mut r).unwrap(), v);
        assert!(r.is_at_end());
    }

    #[test]
    fn values_roundtrip_exactly() {
        roundtrip_value(Value::text(""));
        roundtrip_value(Value::text("Boston"));
        roundtrip_value(Value::text("O'Brien — ünïcode ☃"));
        roundtrip_value(Value::int(0));
        roundtrip_value(Value::int(-7));
        roundtrip_value(Value::num(ratio(22, 7)));
        roundtrip_value(Value::num(ratio(-22, 7)));
        roundtrip_value(Value::num(Rational::new(i128::MAX, 2).unwrap()));
    }

    #[test]
    fn facts_and_events_roundtrip() {
        let f = fact!("Stock", "Tesla X", "Boston", 35);
        let mut buf = Vec::new();
        encode_fact(&f, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_fact(&mut r).unwrap(), f);
        assert!(r.is_at_end());

        for event in [DeltaEvent::insert(f.clone()), DeltaEvent::delete(f)] {
            let mut buf = Vec::new();
            encode_event(&event, &mut buf);
            let mut r = Reader::new(&buf);
            assert_eq!(decode_event(&mut r).unwrap(), event);
            assert!(r.is_at_end());
        }
    }

    #[test]
    fn truncated_and_garbled_buffers_are_rejected_with_offsets() {
        let mut buf = Vec::new();
        encode_event(&DeltaEvent::insert(fact!("R", "a", 1)), &mut buf);
        // Every strict prefix fails to decode (and never panics).
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(decode_event(&mut r).is_err(), "prefix of {cut} decoded");
        }
        // An unknown tag reports the offset it sits at.
        let mut garbled = buf.clone();
        garbled[0] = 0xEE;
        let err = decode_event(&mut Reader::new(&garbled)).unwrap_err();
        assert_eq!(err.offset, 0);
        // Invalid UTF-8 in the relation name.
        let mut bad_utf8 = buf.clone();
        bad_utf8[5] = 0xFF; // first byte of the relation name "R"
        assert!(decode_event(&mut Reader::new(&bad_utf8)).is_err());
    }

    #[test]
    fn non_normal_rationals_are_corruption() {
        // 2/4 is not in normal form; hand-assemble the bytes.
        let mut buf = vec![TAG_NUM];
        buf.extend_from_slice(&2i128.to_le_bytes());
        buf.extend_from_slice(&4i128.to_le_bytes());
        let err = decode_value(&mut Reader::new(&buf)).unwrap_err();
        assert_eq!(err.detail, "rational is not in normal form");
        // Zero denominator.
        let mut buf = vec![TAG_NUM];
        buf.extend_from_slice(&1i128.to_le_bytes());
        buf.extend_from_slice(&0i128.to_le_bytes());
        assert!(decode_value(&mut Reader::new(&buf)).is_err());
    }
}
