//! Error types for the data layer.

use std::fmt;

/// Errors raised when building schemas or database instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A signature was internally inconsistent.
    InvalidSignature(String),
    /// A fact referenced a relation that is not declared in the schema.
    UnknownRelation(String),
    /// A fact had the wrong number of arguments.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Arity of the offending fact.
        found: usize,
    },
    /// A non-numeric value appeared in a numerical column.
    NonNumericValue {
        /// Relation name.
        relation: String,
        /// Offending position (0-based).
        position: usize,
    },
    /// A negative value appeared in a numerical column of a database that was
    /// declared to range over `Q≥0`.
    NegativeValue {
        /// Relation name.
        relation: String,
        /// Offending position (0-based).
        position: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidSignature(msg) => write!(f, "invalid signature: {msg}"),
            DataError::UnknownRelation(name) => write!(f, "unknown relation {name:?}"),
            DataError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch for {relation}: expected {expected}, found {found}"
            ),
            DataError::NonNumericValue { relation, position } => write!(
                f,
                "non-numeric value in numerical column {position} of {relation}"
            ),
            DataError::NegativeValue { relation, position } => write!(
                f,
                "negative value in numerical column {position} of {relation} (domain is Q>=0)"
            ),
        }
    }
}

impl std::error::Error for DataError {}
