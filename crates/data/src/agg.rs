//! Aggregate operators and their algebraic properties.
//!
//! Section 5.1 of the paper defines (positive) aggregate operators as
//! functions from finite multisets of non-negative rationals to rationals,
//! and identifies two properties that drive the main separation theorem:
//! *monotonicity* and *associativity*. Section 7 additionally uses
//! *(bounded) descending chains* (a manifestation of non-monotonicity) and
//! *dual* operators (Definition 7.6) to treat least upper bounds.

use crate::instance::NumericDomain;
use crate::rational::Rational;
use std::collections::BTreeSet;
use std::fmt;

/// The aggregate symbols supported by the query language.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AggFunc {
    /// `SUM`
    Sum,
    /// `COUNT` (counts embeddings; equivalent to `SUM(1)`)
    Count,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `AVG`
    Avg,
    /// `COUNT(DISTINCT r)`
    CountDistinct,
    /// `SUM(DISTINCT r)`
    SumDistinct,
    /// `PRODUCT`
    Product,
}

impl AggFunc {
    /// All supported aggregate symbols.
    pub const ALL: [AggFunc; 8] = [
        AggFunc::Sum,
        AggFunc::Count,
        AggFunc::Min,
        AggFunc::Max,
        AggFunc::Avg,
        AggFunc::CountDistinct,
        AggFunc::SumDistinct,
        AggFunc::Product,
    ];

    /// The SQL spelling of the aggregate symbol.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
            AggFunc::CountDistinct => "COUNT-DISTINCT",
            AggFunc::SumDistinct => "SUM-DISTINCT",
            AggFunc::Product => "PRODUCT",
        }
    }

    /// Parses an aggregate symbol name (case-insensitive).
    pub fn parse(s: &str) -> Option<AggFunc> {
        let u = s.trim().to_ascii_uppercase();
        Some(match u.as_str() {
            "SUM" => AggFunc::Sum,
            "COUNT" => AggFunc::Count,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            "AVG" => AggFunc::Avg,
            "COUNT-DISTINCT" | "COUNT_DISTINCT" | "COUNTD" => AggFunc::CountDistinct,
            "SUM-DISTINCT" | "SUM_DISTINCT" | "SUMD" => AggFunc::SumDistinct,
            "PRODUCT" | "PROD" => AggFunc::Product,
            _ => return None,
        })
    }

    /// Applies the aggregate to a non-empty multiset of values.
    ///
    /// Returns `None` for the empty multiset: the paper's problems
    /// `GLB-CQA`/`LUB-CQA` return the distinguished constant `⊥` whenever some
    /// repair yields the empty multiset, so the library never needs an
    /// `f0` convention.
    pub fn apply(&self, values: &[Rational]) -> Option<Rational> {
        if values.is_empty() {
            return None;
        }
        Some(match self {
            AggFunc::Sum => values.iter().fold(Rational::ZERO, |acc, v| acc + *v),
            AggFunc::Count => Rational::from(values.len()),
            AggFunc::Min => values.iter().copied().fold(values[0], Rational::min),
            AggFunc::Max => values.iter().copied().fold(values[0], Rational::max),
            AggFunc::Avg => {
                let sum = values.iter().fold(Rational::ZERO, |acc, v| acc + *v);
                sum / Rational::from(values.len())
            }
            AggFunc::CountDistinct => {
                let distinct: BTreeSet<Rational> = values.iter().copied().collect();
                Rational::from(distinct.len())
            }
            AggFunc::SumDistinct => {
                let distinct: BTreeSet<Rational> = values.iter().copied().collect();
                distinct.into_iter().fold(Rational::ZERO, |acc, v| acc + v)
            }
            AggFunc::Product => values.iter().fold(Rational::ONE, |acc, v| acc * *v),
        })
    }

    /// Returns `true` if the operator is *associative* in the sense of
    /// Section 5.1: `F(X ⊎ Y) = F({{F(X)}} ⊎ Y)` for non-empty `X`.
    pub fn is_associative(&self) -> bool {
        matches!(
            self,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max | AggFunc::Product
        )
    }

    /// Returns `true` if the operator is *monotone* (Section 5.1) over the
    /// given numeric domain.
    ///
    /// `SUM` is monotone over `Q≥0` but not once a single negative number is
    /// allowed (Section 7.3); `MAX` and `COUNT` are monotone over any domain;
    /// `MIN`, `AVG`, `COUNT-DISTINCT`, `SUM-DISTINCT` and `PRODUCT` are not
    /// monotone over `Q≥0`.
    pub fn is_monotone(&self, domain: NumericDomain) -> bool {
        match self {
            AggFunc::Sum => domain == NumericDomain::NonNegative,
            AggFunc::Count => true,
            AggFunc::Max => true,
            AggFunc::Min
            | AggFunc::Avg
            | AggFunc::CountDistinct
            | AggFunc::SumDistinct
            | AggFunc::Product => false,
        }
    }

    /// Returns `true` if the operator is known to have a *descending chain*
    /// (Definition 7.1) over the given domain.
    pub fn has_descending_chain(&self, domain: NumericDomain) -> bool {
        match self {
            AggFunc::Avg | AggFunc::Product => true,
            AggFunc::Sum => domain == NumericDomain::Unconstrained,
            _ => false,
        }
    }

    /// Returns `true` if the operator is known to have a *bounded* descending
    /// chain (Definition 7.1, used by Lemma 7.3 for NP-hardness) over the
    /// given domain.
    pub fn has_bounded_descending_chain(&self, domain: NumericDomain) -> bool {
        match self {
            AggFunc::Avg | AggFunc::Product => true,
            AggFunc::Sum => domain == NumericDomain::Unconstrained,
            _ => false,
        }
    }

    /// Returns `true` if the paper treats this symbol via the `SUM(1)`
    /// rewriting (Theorem 6.1 remark: COUNT-queries are covered because they
    /// can be written as `SUM(1)`).
    pub fn normalises_to_sum_of_one(&self) -> bool {
        matches!(self, AggFunc::Count)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An aggregate operator: a symbol plus an optional *dual* marker.
///
/// The dual `F^dual(X) = -F(X)` (Definition 7.6) is how the paper reduces
/// `LUB-CQA` to `GLB-CQA` (Proposition 7.7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AggOp {
    /// The underlying aggregate symbol.
    pub func: AggFunc,
    /// Whether this is the dual operator `-F`.
    pub dual: bool,
}

impl AggOp {
    /// The (positive) operator for a symbol.
    pub fn positive(func: AggFunc) -> AggOp {
        AggOp { func, dual: false }
    }

    /// The dual operator for a symbol.
    pub fn dual_of(func: AggFunc) -> AggOp {
        AggOp { func, dual: true }
    }

    /// Applies the operator to a non-empty multiset (`None` for empty).
    pub fn apply(&self, values: &[Rational]) -> Option<Rational> {
        let v = self.func.apply(values)?;
        Some(if self.dual { -v } else { v })
    }

    /// Associativity carries over to duals.
    pub fn is_associative(&self) -> bool {
        self.func.is_associative()
    }

    /// Monotonicity of the operator over the given domain.
    ///
    /// Duals of monotone operators are *antitone*, hence not monotone (this is
    /// exactly why `LUB-CQA(SUM)` is not covered by Theorem 6.1; see
    /// Theorem 7.8).
    pub fn is_monotone(&self, domain: NumericDomain) -> bool {
        if self.dual {
            // -MIN is monotone (MIN is "antitone" in the relevant sense only
            // for multiset extension, not pointwise), but the paper only needs
            // the negative results here; we conservatively report duals of the
            // standard operators.
            false
        } else {
            self.func.is_monotone(domain)
        }
    }

    /// Descending-chain status (Section 7.2: duals of SUM, AVG, PRODUCT all
    /// have descending chains).
    pub fn has_descending_chain(&self, domain: NumericDomain) -> bool {
        if self.dual {
            matches!(
                self.func,
                AggFunc::Sum | AggFunc::Avg | AggFunc::Product | AggFunc::Count
            )
        } else {
            self.func.has_descending_chain(domain)
        }
    }
}

impl fmt::Display for AggOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dual {
            write!(f, "{}^dual", self.func)
        } else {
            write!(f, "{}", self.func)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::{rat, ratio};
    use proptest::prelude::*;

    #[test]
    fn apply_basics() {
        let vals = [rat(5), rat(6), rat(7), rat(8)];
        assert_eq!(AggFunc::Sum.apply(&vals), Some(rat(26)));
        assert_eq!(AggFunc::Count.apply(&vals), Some(rat(4)));
        assert_eq!(AggFunc::Min.apply(&vals), Some(rat(5)));
        assert_eq!(AggFunc::Max.apply(&vals), Some(rat(8)));
        assert_eq!(AggFunc::Avg.apply(&vals), Some(ratio(13, 2)));
        assert_eq!(
            AggFunc::Product.apply(&[rat(2), rat(3), rat(4)]),
            Some(rat(24))
        );
        assert_eq!(AggFunc::Sum.apply(&[]), None);
    }

    #[test]
    fn distinct_variants() {
        let vals = [rat(3), rat(3), rat(4)];
        assert_eq!(AggFunc::CountDistinct.apply(&vals), Some(rat(2)));
        assert_eq!(AggFunc::SumDistinct.apply(&vals), Some(rat(7)));
        assert_eq!(AggFunc::Count.apply(&vals), Some(rat(3)));
        assert_eq!(AggFunc::Sum.apply(&vals), Some(rat(10)));
    }

    /// Example 5.1 of the paper: COUNT is not associative.
    #[test]
    fn example_5_1_count_not_associative() {
        let x = [rat(5), rat(6), rat(7)];
        let full = [rat(5), rat(6), rat(7), rat(8)];
        let nested = [AggFunc::Count.apply(&x).unwrap(), rat(8)];
        assert_eq!(AggFunc::Count.apply(&full), Some(rat(4)));
        assert_eq!(AggFunc::Count.apply(&nested), Some(rat(2)));
        assert!(!AggFunc::Count.is_associative());
        assert!(AggFunc::Sum.is_associative());
        assert!(AggFunc::Min.is_associative());
        assert!(AggFunc::Max.is_associative());
        assert!(!AggFunc::Avg.is_associative());
        assert!(!AggFunc::SumDistinct.is_associative());
    }

    /// Example 5.2 of the paper: MIN and COUNT-DISTINCT are not monotone.
    #[test]
    fn example_5_2_monotonicity() {
        let d = NumericDomain::NonNegative;
        assert!(AggFunc::Max.is_monotone(d));
        assert!(AggFunc::Sum.is_monotone(d));
        assert!(AggFunc::Count.is_monotone(d));
        assert!(!AggFunc::Min.is_monotone(d));
        assert!(!AggFunc::CountDistinct.is_monotone(d));
        assert!(!AggFunc::Product.is_monotone(d));
        // SUM loses monotonicity over unconstrained domains (Section 7.3).
        assert!(!AggFunc::Sum.is_monotone(NumericDomain::Unconstrained));
    }

    #[test]
    fn descending_chains() {
        let d = NumericDomain::NonNegative;
        assert!(AggFunc::Avg.has_descending_chain(d));
        assert!(AggFunc::Product.has_descending_chain(d));
        assert!(!AggFunc::Sum.has_descending_chain(d));
        assert!(AggFunc::Sum.has_descending_chain(NumericDomain::Unconstrained));
        assert!(AggOp::dual_of(AggFunc::Sum).has_descending_chain(d));
        assert!(AggOp::dual_of(AggFunc::Avg).has_descending_chain(d));
    }

    #[test]
    fn duals() {
        let dual_sum = AggOp::dual_of(AggFunc::Sum);
        assert_eq!(dual_sum.apply(&[rat(3), rat(4)]), Some(rat(-7)));
        assert_eq!(dual_sum.apply(&[]), None);
        assert!(dual_sum.is_associative());
        assert!(!dual_sum.is_monotone(NumericDomain::NonNegative));
        assert_eq!(AggOp::positive(AggFunc::Max).apply(&[rat(3)]), Some(rat(3)));
        assert_eq!(dual_sum.to_string(), "SUM^dual");
    }

    #[test]
    fn parse_names() {
        assert_eq!(AggFunc::parse("sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse(" MAX "), Some(AggFunc::Max));
        assert_eq!(
            AggFunc::parse("count-distinct"),
            Some(AggFunc::CountDistinct)
        );
        assert_eq!(AggFunc::parse("median"), None);
        for f in AggFunc::ALL {
            assert_eq!(AggFunc::parse(f.name()), Some(f));
        }
    }

    fn values(max_len: usize) -> impl Strategy<Value = Vec<Rational>> {
        proptest::collection::vec((0i64..50).prop_map(rat), 1..=max_len)
    }

    proptest! {
        /// Associativity property check for the operators we declare associative.
        #[test]
        fn prop_associativity_holds(x in values(5), y in values(5)) {
            for f in [AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Product] {
                let mut union = x.clone();
                union.extend(y.iter().copied());
                let lhs = f.apply(&union).unwrap();
                let mut nested = vec![f.apply(&x).unwrap()];
                nested.extend(y.iter().copied());
                let rhs = f.apply(&nested).unwrap();
                prop_assert_eq!(lhs, rhs, "operator {}", f);
            }
        }

        /// Monotonicity property check: pointwise increase plus extension never
        /// decreases the aggregate, for the operators we declare monotone.
        #[test]
        fn prop_monotonicity_holds(x in values(5), extra in values(3), bumps in proptest::collection::vec(0i64..10, 5)) {
            for f in [AggFunc::Sum, AggFunc::Count, AggFunc::Max] {
                let bumped: Vec<Rational> = x
                    .iter()
                    .enumerate()
                    .map(|(i, v)| *v + rat(bumps[i % bumps.len()]))
                    .collect();
                let mut extended = bumped.clone();
                extended.extend(extra.iter().copied());
                prop_assert!(f.apply(&x).unwrap() <= f.apply(&extended).unwrap(), "operator {}", f);
            }
        }
    }
}
