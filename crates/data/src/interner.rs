//! Dense `u32` interning of [`Value`]s — the id space the columnar index
//! stores and the join core compares.
//!
//! A [`ValueInterner`] assigns each distinct [`Value`] a dense `u32` id. Ids
//! come in two ranges:
//!
//! * the **sorted prefix** `0..sorted_len()`: assigned at cold build time in
//!   ascending [`Value`] order, so *within the prefix* numeric id order *is*
//!   value order (the paper's `⪯` tie-breaking survives interning for free);
//! * the **append-only overlay** `sorted_len()..len()`: ids handed out by
//!   [`ValueInterner::intern`] for values first seen by a later commit, in
//!   arrival order. Overlay ids carry no order information — comparisons
//!   involving them fall back to materialising the values — but they are
//!   **stable**: an id, once assigned, never changes or disappears, so
//!   structurally-shared snapshots of interned storage can span commits.
//!
//! Id equality always coincides with value equality (each distinct value has
//! exactly one id), which is what lets the hot paths hash and compare raw
//! `u32`s. Exact ordering is provided by [`ValueInterner::cmp_ids`], which is
//! a plain integer comparison whenever both ids sit in the sorted prefix.
//!
//! Two ids are reserved as caller-side sentinels and never assigned:
//! [`UNBOUND_ID`] (an unbound join slot) and [`MISSING_ID`] (a query constant
//! absent from the interner, which therefore matches nothing).

use crate::value::Value;
use std::cmp::Ordering;
use std::sync::Arc;

/// Sentinel id for an unbound join slot. Never assigned to a value.
pub const UNBOUND_ID: u32 = u32::MAX;

/// Sentinel id for a value that is **not** in the interner (e.g. a query
/// constant that occurs in no fact). Never assigned to a value; comparing any
/// fact id against it fails, so a `MISSING_ID` constraint matches nothing.
pub const MISSING_ID: u32 = u32::MAX - 1;

/// Largest number of distinct values an interner may hold (leaves the two
/// sentinel ids unassignable).
pub const MAX_INTERNED: usize = (u32::MAX - 2) as usize;

/// A dense, order-aware, append-only mapping `Value ↔ u32`.
///
/// Cloning is cheap: the sorted prefix is `Arc`-shared, and only the (small)
/// overlay vectors are copied. This is what keeps the serving layer's
/// per-commit path copy of the index flat even though the interner rides
/// inside it.
#[derive(Clone, Debug, Default)]
pub struct ValueInterner {
    /// Ids `0..sorted.len()`, in ascending `Value` order. Frozen at build.
    sorted: Arc<Vec<Value>>,
    /// Ids `sorted.len()..`, in arrival order.
    appended: Vec<Value>,
    /// The overlay's ids, sorted by their value — the overlay's lookup side.
    appended_by_value: Vec<u32>,
}

impl ValueInterner {
    /// An empty interner.
    pub fn new() -> ValueInterner {
        ValueInterner::default()
    }

    /// Builds an interner whose sorted prefix is exactly `values`.
    ///
    /// `values` must be strictly ascending (sorted and duplicate-free); cold
    /// builds obtain it by draining a `BTreeSet<Value>`.
    pub fn from_sorted(values: Vec<Value>) -> ValueInterner {
        debug_assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "sorted prefix must be strictly ascending"
        );
        assert!(values.len() <= MAX_INTERNED, "interner capacity exhausted");
        ValueInterner {
            sorted: Arc::new(values),
            appended: Vec::new(),
            appended_by_value: Vec::new(),
        }
    }

    /// Number of ids in the sorted prefix (ids below this compare by plain
    /// integer order).
    pub fn sorted_len(&self) -> usize {
        self.sorted.len()
    }

    /// Total number of interned values.
    pub fn len(&self) -> usize {
        self.sorted.len() + self.appended.len()
    }

    /// Returns `true` if nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The id of `v`, if interned.
    pub fn id_of(&self, v: &Value) -> Option<u32> {
        if let Ok(i) = self.sorted.binary_search(v) {
            return Some(i as u32);
        }
        self.appended_by_value
            .binary_search_by(|&id| self.value(id).cmp(v))
            .ok()
            .map(|i| self.appended_by_value[i])
    }

    /// The id of `v`, or [`MISSING_ID`] when `v` is not interned — the form
    /// lookup code wants: a missing constant becomes a constraint that
    /// matches nothing instead of an `Option` to thread around.
    pub fn id_or_missing(&self, v: &Value) -> u32 {
        self.id_of(v).unwrap_or(MISSING_ID)
    }

    /// Interns `v`, returning its (existing or freshly appended) id.
    /// Append-only: already-assigned ids are never disturbed.
    pub fn intern(&mut self, v: &Value) -> u32 {
        if let Some(id) = self.id_of(v) {
            return id;
        }
        assert!(self.len() < MAX_INTERNED, "interner capacity exhausted");
        let id = self.len() as u32;
        self.appended.push(v.clone());
        let at = self
            .appended_by_value
            .binary_search_by(|&other| self.value(other).cmp(v))
            .expect_err("v is not interned");
        self.appended_by_value.insert(at, id);
        id
    }

    /// The value behind an id.
    ///
    /// # Panics
    /// Panics if `id` was never assigned (including the sentinels).
    pub fn value(&self, id: u32) -> &Value {
        let id = id as usize;
        if id < self.sorted.len() {
            &self.sorted[id]
        } else {
            &self.appended[id - self.sorted.len()]
        }
    }

    /// Returns `true` if `id` names an interned value (sentinels and
    /// out-of-range ids do not).
    pub fn contains_id(&self, id: u32) -> bool {
        (id as usize) < self.len()
    }

    /// Exact value order of two assigned ids: a plain integer comparison when
    /// both sit in the sorted prefix, a materialised [`Value`] comparison
    /// otherwise. Equal ids are equal values by construction.
    pub fn cmp_ids(&self, a: u32, b: u32) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        if (a as usize) < self.sorted.len() && (b as usize) < self.sorted.len() {
            return a.cmp(&b);
        }
        self.value(a).cmp(self.value(b))
    }

    /// Locates `v` relative to the **sorted prefix**: `Ok(id)` when `v` is
    /// interned there, `Err(bound)` where `bound` is the number of prefix
    /// values strictly less than `v` (i.e. the id `v` would get if it were
    /// inserted into the prefix).
    ///
    /// This is the precomputation behind range seeks: once the rank of a
    /// probe value is known, comparing any sorted-prefix id against the probe
    /// is a plain integer comparison ([`ValueInterner::cmp_id_to_value`]).
    pub fn prefix_rank(&self, v: &Value) -> Result<u32, u32> {
        match self.sorted.binary_search(v) {
            Ok(i) => Ok(i as u32),
            Err(i) => Err(i as u32),
        }
    }

    /// Value order of an assigned id against an arbitrary probe value (which
    /// need not be interned), given the probe's precomputed
    /// [`ValueInterner::prefix_rank`]: integer-only when the id sits in the
    /// sorted prefix, a materialised comparison for overlay ids.
    pub fn cmp_id_to_value(&self, id: u32, v: &Value, rank: Result<u32, u32>) -> Ordering {
        if (id as usize) < self.sorted.len() {
            return match rank {
                Ok(r) => id.cmp(&r),
                // v sits strictly between prefix ranks r-1 and r: every id
                // below r is less than v, every id at or above r is greater.
                Err(r) => {
                    if id < r {
                        Ordering::Less
                    } else {
                        Ordering::Greater
                    }
                }
            };
        }
        self.value(id).cmp(v)
    }

    /// Lexicographic value order of two id tuples (the block-key order of the
    /// columnar index).
    pub fn cmp_id_tuples(&self, a: &[u32], b: &[u32]) -> Ordering {
        for (&x, &y) in a.iter().zip(b.iter()) {
            match self.cmp_ids(x, y) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        a.len().cmp(&b.len())
    }

    /// Materialises an id tuple back into values.
    pub fn values_of(&self, ids: &[u32]) -> Vec<Value> {
        ids.iter().map(|&id| self.value(id).clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn build(values: impl IntoIterator<Item = Value>) -> ValueInterner {
        let sorted: BTreeSet<Value> = values.into_iter().collect();
        ValueInterner::from_sorted(sorted.into_iter().collect())
    }

    #[test]
    fn ids_round_trip_and_sorted_prefix_orders() {
        let mut interner = build([
            Value::int(3),
            Value::int(1),
            Value::text("b"),
            Value::text("a"),
        ]);
        assert_eq!(interner.len(), 4);
        assert_eq!(interner.sorted_len(), 4);
        // Num < Text, and within each kind the natural order.
        assert_eq!(interner.id_of(&Value::int(1)), Some(0));
        assert_eq!(interner.id_of(&Value::int(3)), Some(1));
        assert_eq!(interner.id_of(&Value::text("a")), Some(2));
        assert_eq!(interner.id_of(&Value::text("b")), Some(3));
        assert_eq!(interner.id_of(&Value::int(2)), None);
        assert_eq!(interner.id_or_missing(&Value::int(2)), MISSING_ID);
        // Appended ids are dense, stable, and findable.
        let id2 = interner.intern(&Value::int(2));
        assert_eq!(id2, 4);
        assert_eq!(interner.intern(&Value::int(2)), 4);
        assert_eq!(interner.id_of(&Value::int(2)), Some(4));
        assert_eq!(interner.intern(&Value::int(1)), 0, "existing ids reused");
        assert_eq!(interner.value(4), &Value::int(2));
        // Order is exact across the prefix/overlay boundary.
        assert_eq!(interner.cmp_ids(0, 4), Ordering::Less); // 1 < 2
        assert_eq!(interner.cmp_ids(4, 1), Ordering::Less); // 2 < 3
        assert_eq!(interner.cmp_ids(4, 4), Ordering::Equal);
        assert!(!interner.contains_id(UNBOUND_ID));
        assert!(!interner.contains_id(MISSING_ID));
    }

    #[test]
    fn tuple_order_is_lexicographic_value_order() {
        let interner = build([Value::text("x"), Value::text("y"), Value::int(7)]);
        let x = interner.id_of(&Value::text("x")).unwrap();
        let y = interner.id_of(&Value::text("y")).unwrap();
        let seven = interner.id_of(&Value::int(7)).unwrap();
        assert_eq!(interner.cmp_id_tuples(&[x, seven], &[x, y]), Ordering::Less);
        assert_eq!(interner.cmp_id_tuples(&[x], &[x, y]), Ordering::Less);
        assert_eq!(interner.cmp_id_tuples(&[y], &[x, y]), Ordering::Greater);
        assert_eq!(
            interner.values_of(&[x, seven]),
            vec![Value::text("x"), Value::int(7)]
        );
    }

    #[test]
    fn rank_comparisons_match_materialised_order() {
        let mut interner = build([Value::int(1), Value::int(3), Value::int(5)]);
        let nine = interner.intern(&Value::int(9)); // overlay id
        for probe in [
            Value::int(0),
            Value::int(1),
            Value::int(2),
            Value::int(4),
            Value::int(9),
        ] {
            let rank = interner.prefix_rank(&probe);
            for id in [0, 1, 2, nine] {
                assert_eq!(
                    interner.cmp_id_to_value(id, &probe, rank),
                    interner.value(id).cmp(&probe),
                    "id {id} vs {probe:?}"
                );
            }
        }
        assert_eq!(interner.prefix_rank(&Value::int(3)), Ok(1));
        assert_eq!(interner.prefix_rank(&Value::int(4)), Err(2));
        assert_eq!(
            interner.prefix_rank(&Value::int(9)),
            Err(3),
            "overlay ids are not prefix ranks"
        );
    }

    /// Small mixed-kind value pool so draws collide across prefix/overlay.
    fn value_from(draw: (u8, i64)) -> Value {
        if draw.0.is_multiple_of(2) {
            Value::int(draw.1)
        } else {
            Value::text(format!("t{}", draw.1.rem_euclid(40)))
        }
    }

    proptest! {
        /// The tentpole contract: ids are order-isomorphic to `Value` order —
        /// for any two interned values, `cmp_ids` of their ids equals
        /// `Value::cmp`, across any split between sorted prefix and overlay.
        #[test]
        fn ids_are_order_isomorphic_to_values(
            prefix_draws in proptest::collection::vec((0u8..4, -30i64..30), 0..24),
            overlay_draws in proptest::collection::vec((0u8..4, -30i64..30), 0..24),
        ) {
            let prefix: Vec<Value> = prefix_draws.into_iter().map(value_from).collect();
            let overlay: Vec<Value> = overlay_draws.into_iter().map(value_from).collect();
            let mut interner = build(prefix.clone());
            for v in &overlay {
                interner.intern(v);
            }
            let all: Vec<Value> = prefix.into_iter().chain(overlay).collect();
            for a in &all {
                let ia = interner.id_of(a).expect("interned");
                prop_assert_eq!(interner.value(ia), a);
                for b in &all {
                    let ib = interner.id_of(b).expect("interned");
                    prop_assert_eq!(
                        interner.cmp_ids(ia, ib),
                        a.cmp(b),
                        "ids {} / {} vs values {:?} / {:?}",
                        ia, ib, a, b
                    );
                    prop_assert_eq!(ia == ib, a == b);
                }
            }
        }
    }
}
