//! Criterion benchmarks for the performance-sensitive experiments:
//!
//! * `glb_scaling`        (E6) — rewriting-based GLB(SUM) vs the MaxSAT
//!   baseline vs exact repair enumeration, as the instance grows;
//! * `inconsistency_sweep` (E7) — rewriting-based GLB(SUM) as the fraction of
//!   key-violating blocks grows;
//! * `rewrite_construction` (E10) — construction time of the symbolic
//!   AGGR[FOL] rewriting as the query grows (Theorem 1.1's quadratic bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcqa_baselines::maxsat_glb;
use rcqa_core::engine::RangeCqa;
use rcqa_core::exact::exact_bounds;
use rcqa_core::prepared::PreparedAggQuery;
use rcqa_core::rewrite::{rewriting_for, BoundKind};
use rcqa_data::{Schema, Signature};
use rcqa_gen::JoinWorkload;
use rcqa_query::parse_agg_query;

fn glb_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("glb_scaling");
    group.sample_size(10);
    for &n in &[25usize, 50, 100, 200, 400] {
        let cfg = JoinWorkload {
            r_blocks: n,
            y_domain: (n / 2).max(1),
            s_blocks_per_y: 2,
            inconsistency_ratio: 0.1,
            block_size: 2,
            max_value: 100,
            seed: 7,
        };
        let db = cfg.generate();
        let query = cfg.sum_query();
        let engine = RangeCqa::new(&query, &cfg.schema()).unwrap();
        let prepared = PreparedAggQuery::new(&query, &cfg.schema()).unwrap();
        group.bench_with_input(BenchmarkId::new("rewriting", n), &n, |b, _| {
            b.iter(|| engine.glb(&db).unwrap())
        });
        // The exponential baselines are only run on the smallest instances:
        // the MaxSAT branch-and-bound blows up with the number of embeddings
        // and exact enumeration with the number of inconsistent blocks.
        if n <= 25 {
            group.bench_with_input(BenchmarkId::new("maxsat", n), &n, |b, _| {
                b.iter(|| maxsat_glb(&prepared, &db).unwrap())
            });
        }
        if n <= 50 {
            group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
                b.iter(|| exact_bounds(&prepared, &db, 1 << 24).unwrap())
            });
        }
    }
    group.finish();
}

fn inconsistency_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("inconsistency_sweep");
    group.sample_size(10);
    for &ratio in &[0.0f64, 0.1, 0.2, 0.4] {
        let cfg = JoinWorkload {
            r_blocks: 200,
            y_domain: 100,
            s_blocks_per_y: 2,
            inconsistency_ratio: ratio,
            block_size: 2,
            max_value: 100,
            seed: 11,
        };
        let db = cfg.generate();
        let engine = RangeCqa::new(&cfg.sum_query(), &cfg.schema()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("rewriting", format!("{:.0}%", ratio * 100.0)),
            &ratio,
            |b, _| b.iter(|| engine.glb(&db).unwrap()),
        );
    }
    group.finish();
}

fn rewrite_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewrite_construction");
    for k in [2usize, 4, 6, 8] {
        let mut schema = Schema::new();
        let mut atoms = Vec::new();
        for i in 0..k {
            schema.add_relation(format!("C{i}"), Signature::new(2, 1, [1]).unwrap());
            atoms.push(format!("C{i}(x{i}, x{})", i + 1));
        }
        let text = format!("SUM(x{k}) <- {}", atoms.join(", "));
        let prepared = PreparedAggQuery::new(&parse_agg_query(&text).unwrap(), &schema).unwrap();
        group.bench_with_input(BenchmarkId::new("chain_query", k), &k, |b, _| {
            b.iter(|| rewriting_for(&prepared, BoundKind::Glb).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    glb_scaling,
    inconsistency_sweep,
    rewrite_construction
);
criterion_main!(benches);
