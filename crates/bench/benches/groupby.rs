//! Criterion benchmarks for the grouped (GROUP BY) evaluation pipeline:
//!
//! * `groupby_pipeline` — the one-pass shared-index engine (`RangeCqa::glb`,
//!   `RangeCqa::range`) vs the seed per-group re-preparation strategy
//!   (`rcqa_bench::legacy::grouped_sum_glb`), as the number of groups grows.
//!   The seed strategy rebuilds the database index and re-runs attack-graph
//!   analysis once per group, so its cost is quadratic in the group count
//!   while the one-pass pipeline stays linear in the data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcqa_bench::legacy;
use rcqa_core::engine::RangeCqa;
use rcqa_gen::JoinWorkload;
use rcqa_query::parse_agg_query;

fn groupby_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("groupby_pipeline");
    group.sample_size(10);
    for &n in &[50usize, 100, 200] {
        let cfg = JoinWorkload {
            r_blocks: n,
            y_domain: (n / 2).max(1),
            s_blocks_per_y: 2,
            inconsistency_ratio: 0.1,
            block_size: 2,
            max_value: 100,
            seed: 13,
        };
        let db = cfg.generate();
        let query = cfg.grouped_sum_query();
        let schema = cfg.schema();
        let engine = RangeCqa::new(&query, &schema).unwrap();
        group.bench_with_input(BenchmarkId::new("one_pass_glb", n), &n, |b, _| {
            b.iter(|| engine.glb(&db).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("seed_strategy_glb", n), &n, |b, _| {
            b.iter(|| legacy::grouped_sum_glb(&query, &schema, &db))
        });
        // Both bounds of MAX are rewriting-backed, so `range` exercises the
        // shared-analysis path end to end (SUM's LUB would fall back to
        // exponential repair enumeration and swamp the measurement).
        let max_query = parse_agg_query("(x, MAX(r)) <- R(x, y), S(y, z, r)").unwrap();
        let max_engine = RangeCqa::new(&max_query, &schema).unwrap();
        group.bench_with_input(BenchmarkId::new("one_pass_max_range", n), &n, |b, _| {
            b.iter(|| max_engine.range(&db).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, groupby_pipeline);
criterion_main!(benches);
