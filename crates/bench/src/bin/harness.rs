//! The experiment harness: regenerates every experiment report (E1–E18).
//!
//! Usage:
//!   cargo run -p rcqa-bench --bin harness --release             # E1–E10
//!   cargo run -p rcqa-bench --bin harness --release -- e3 e9    # selected ones
//!   cargo run -p rcqa-bench --bin harness --release -- groupby  # E11 + BENCH_groupby.json
//!   cargo run -p rcqa-bench --bin harness --release -- parallel # E12 + BENCH_parallel.json
//!   cargo run -p rcqa-bench --bin harness --release -- serving  # E13 + BENCH_serving.json
//!   cargo run -p rcqa-bench --bin harness --release -- concurrent # E14 + BENCH_concurrent.json
//!   cargo run -p rcqa-bench --bin harness --release -- durability # E15 + BENCH_wal.json
//!   cargo run -p rcqa-bench --bin harness --release -- --help   # list modes
//!
//! Unknown experiment names are rejected with a non-zero exit code (they used
//! to be silently ignored, printing just the banner).
//!
//! The `groupby` mode additionally writes the machine-readable
//! `BENCH_groupby.json` (path overridable via the `BENCH_GROUPBY_PATH`
//! environment variable), tracking the one-pass pipeline's speedup over the
//! seed per-group strategy; `parallel` writes `BENCH_parallel.json`
//! (`BENCH_PARALLEL_PATH`), tracking the block-sharded executor's scaling
//! over the sequential plan; `serving` writes `BENCH_serving.json`
//! (`BENCH_SERVING_PATH`), tracking the warm serving session's repeated-query
//! and insert-then-query advantage over per-call cold sessions; `concurrent`
//! writes `BENCH_concurrent.json` (`BENCH_CONCURRENT_PATH`), tracking the
//! snapshot-isolated session's warm read throughput at 1/2/4 client threads
//! plus readers-during-writer agreement; `durability` writes `BENCH_wal.json`
//! (`BENCH_WAL_PATH`), tracking the write-ahead log's per-commit overhead
//! under amortized and per-commit fsync policies plus the time to recover a
//! 10⁴-event log tail; `scale` writes `BENCH_scale.json` (`BENCH_SCALE_PATH`;
//! fact budget overridable via `BENCH_SCALE_FACTS`), comparing the interned
//! columnar layout against the pre-interning row layout on a Zipf-skewed
//! 10⁵-fact join; `range` writes `BENCH_range.json` (`BENCH_RANGE_PATH`,
//! `BENCH_RANGE_FACTS`), comparing the cost-based range seek against the
//! forced full-scan baseline on the same 10⁵-fact tier; `incremental` writes
//! `BENCH_incremental.json` (`BENCH_INCREMENTAL_PATH`), tracking per-write
//! warm-read latency of the support-tracked patch path against forced full
//! recompute across growing group counts, with the `SessionStats` per-path
//! counters (supported patches, support misses, top-k fallbacks) alongside;
//! `shard` writes `BENCH_shard.json` (`BENCH_SHARD_PATH`), tracking the
//! sharded front-end's write-then-warm-read latency at 1/2/4 shards plus
//! group-commit write throughput against serial single-session commits,
//! with the aggregated `ShardedStats` route counters alongside.
//!
//! Scaling artifacts (`parallel`, `shard`) record the machine's available
//! parallelism, and on a single-core box they refuse to overwrite an
//! existing artifact (the numbers would be misleading); CI regenerates them
//! on multi-core runners with `BENCH_FORCE_WRITE=1`.

use std::process::ExitCode;

/// Every experiment mode: name, aliases, one-line description.
const MODES: &[(&str, &[&str], &str)] = &[
    ("e1", &[], "Fig. 1 + introduction query g0 (GLB = 70)"),
    ("e2", &[], "Fig. 2 / Example 3.1: attack graph of q0"),
    (
        "e3",
        &[],
        "Fig. 3-5 / Section 6.1: ∀embeddings M0, GLB = 9, rewriting",
    ),
    ("e4", &[], "Examples 4.1 / 4.4: ∀embeddings over dbStock"),
    (
        "e5",
        &[],
        "Separation decision (Theorems 1.1, 5.5, 6.1, 7.10, 7.11)",
    ),
    (
        "e6",
        &[],
        "GLB(SUM) scaling: rewriting vs MaxSAT vs exact enumeration",
    ),
    ("e7", &[], "Sensitivity to the inconsistency ratio"),
    (
        "e8",
        &[],
        "GROUP BY range semantics via the SQL session facade",
    ),
    ("e9", &[], "Section 7.3: refuting the Caggforest claim"),
    ("e10", &[], "MIN/MAX bounds and rewriting-size growth"),
    (
        "groupby",
        &["e11"],
        "one-pass pipeline vs seed per-group strategy (writes BENCH_groupby.json; opt-in)",
    ),
    (
        "parallel",
        &["e12"],
        "parallel executor scaling at 1/2/4 threads (writes BENCH_parallel.json; opt-in)",
    ),
    (
        "serving",
        &["e13"],
        "warm serving session vs per-call cold sessions (writes BENCH_serving.json; opt-in)",
    ),
    (
        "concurrent",
        &["e14"],
        "snapshot-isolated session at 1/2/4 client threads (writes BENCH_concurrent.json; opt-in)",
    ),
    (
        "durability",
        &["e15"],
        "WAL append/fsync overhead and crash-recovery time (writes BENCH_wal.json; opt-in)",
    ),
    (
        "scale",
        &["e16"],
        "interned columnar vs row layout on a 10^5-fact skewed join (writes BENCH_scale.json; opt-in)",
    ),
    (
        "range",
        &["e17"],
        "cost-based range seek vs forced full scan on a 10^5-fact skewed join (writes BENCH_range.json; opt-in)",
    ),
    (
        "incremental",
        &["e18"],
        "support-tracked result patching vs full recompute per write (writes BENCH_incremental.json; opt-in)",
    ),
    (
        "shard",
        &["e19"],
        "sharded front-end: 1/2/4-shard reads + group-commit writes (writes BENCH_shard.json; opt-in)",
    ),
];

/// Writes a machine-readable scaling artifact, unless this is a
/// single-core box that would overwrite an existing (presumably
/// multi-core CI) artifact with misleading numbers. `BENCH_FORCE_WRITE=1`
/// overrides the guard — CI sets it when regenerating.
fn write_scaling_artifact(env_var: &str, default_path: &str, json: String) {
    let path = std::env::var(env_var).unwrap_or_else(|_| default_path.to_string());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let forced = std::env::var("BENCH_FORCE_WRITE").is_ok_and(|v| v != "0");
    if cores < 2 && !forced && std::path::Path::new(&path).exists() {
        println!(
            "  kept existing {path}: this machine has {cores} core(s), so fresh \
             scaling numbers would be misleading (set BENCH_FORCE_WRITE=1 to overwrite)"
        );
        return;
    }
    match std::fs::write(&path, json) {
        Ok(()) => println!("  wrote {path}"),
        Err(err) => eprintln!("  failed to write {path}: {err}"),
    }
}

fn print_help() {
    println!("usage: harness [MODE ...]");
    println!();
    println!("With no MODE, runs E1-E10 (the paper experiments). The timing modes");
    println!("(`groupby`, `parallel`, `serving`, `concurrent`, `durability`,");
    println!("`scale`, `range`, `incremental`, `shard`) are opt-in. Modes:");
    println!();
    for (name, aliases, desc) in MODES {
        let alias = if aliases.is_empty() {
            String::new()
        } else {
            format!(" (alias: {})", aliases.join(", "))
        };
        println!("  {name:<9} {desc}{alias}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();

    if args
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        print_help();
        return ExitCode::SUCCESS;
    }

    let known = |arg: &str| {
        MODES
            .iter()
            .any(|(name, aliases, _)| *name == arg || aliases.contains(&arg))
    };
    let unknown: Vec<&String> = args.iter().filter(|a| !known(a)).collect();
    if !unknown.is_empty() {
        for arg in &unknown {
            eprintln!("error: unknown experiment mode {arg:?}");
        }
        eprintln!();
        print_help();
        return ExitCode::from(2);
    }

    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    // The timing modes only run when named explicitly. Aliases come from the
    // MODES table, so a mode reachable by the unknown-name check is always
    // runnable by the same names.
    let want_opt_in = |name: &str| {
        let aliases = MODES
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, aliases, _)| *aliases)
            .unwrap_or(&[]);
        args.iter()
            .any(|a| a == name || aliases.contains(&a.as_str()))
    };

    println!("rcqa experiment harness — reproduction of PODS 2024 \"Computing Range");
    println!("Consistent Answers to Aggregation Queries via Rewriting\"\n");

    if want("e1") {
        println!("{}", rcqa_bench::e1());
    }
    if want("e2") {
        println!("{}", rcqa_bench::e2());
    }
    if want("e3") {
        println!("{}", rcqa_bench::e3());
    }
    if want("e4") {
        println!("{}", rcqa_bench::e4());
    }
    if want("e5") {
        println!("{}", rcqa_bench::e5());
    }
    if want("e6") {
        let sizes = [25, 50, 100, 200, 400, 800];
        let rows = rcqa_bench::e6(&sizes, 25);
        println!("{}", rcqa_bench::format_e6(&rows));
    }
    if want("e7") {
        println!("{}", rcqa_bench::e7(&[0.0, 0.05, 0.1, 0.2, 0.4]));
    }
    if want("e8") {
        println!("{}", rcqa_bench::e8());
    }
    if want("e9") {
        println!("{}", rcqa_bench::e9());
    }
    if want("e10") {
        println!("{}", rcqa_bench::e10());
    }
    if want_opt_in("groupby") {
        let bench = rcqa_bench::bench_groupby(150, 5);
        println!("{}", rcqa_bench::format_groupby(&bench));
        let path = std::env::var("BENCH_GROUPBY_PATH")
            .unwrap_or_else(|_| "BENCH_groupby.json".to_string());
        match std::fs::write(&path, bench.to_json()) {
            Ok(()) => println!("  wrote {path}"),
            Err(err) => eprintln!("  failed to write {path}: {err}"),
        }
    }
    if want_opt_in("serving") {
        let bench = rcqa_bench::bench_serving(150, 40, 5);
        println!("{}", rcqa_bench::format_serving(&bench));
        let path = std::env::var("BENCH_SERVING_PATH")
            .unwrap_or_else(|_| "BENCH_serving.json".to_string());
        match std::fs::write(&path, bench.to_json()) {
            Ok(()) => println!("  wrote {path}"),
            Err(err) => eprintln!("  failed to write {path}: {err}"),
        }
    }
    if want_opt_in("concurrent") {
        let bench = rcqa_bench::bench_concurrent(150, 400, 5);
        println!("{}", rcqa_bench::format_concurrent(&bench));
        let path = std::env::var("BENCH_CONCURRENT_PATH")
            .unwrap_or_else(|_| "BENCH_concurrent.json".to_string());
        match std::fs::write(&path, bench.to_json()) {
            Ok(()) => println!("  wrote {path}"),
            Err(err) => eprintln!("  failed to write {path}: {err}"),
        }
    }
    if want_opt_in("durability") {
        let bench = rcqa_bench::bench_durability(128, 16, 10_000, 5);
        println!("{}", rcqa_bench::format_durability(&bench));
        let path = std::env::var("BENCH_WAL_PATH").unwrap_or_else(|_| "BENCH_wal.json".to_string());
        match std::fs::write(&path, bench.to_json()) {
            Ok(()) => println!("  wrote {path}"),
            Err(err) => eprintln!("  failed to write {path}: {err}"),
        }
    }
    if want_opt_in("scale") {
        // 10^5 facts by default; BENCH_SCALE_FACTS raises it to the 10^6
        // tier when a longer run is affordable.
        let target = std::env::var("BENCH_SCALE_FACTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100_000);
        let bench = rcqa_bench::bench_scale(target, 5);
        println!("{}", rcqa_bench::format_scale(&bench));
        let path =
            std::env::var("BENCH_SCALE_PATH").unwrap_or_else(|_| "BENCH_scale.json".to_string());
        match std::fs::write(&path, bench.to_json()) {
            Ok(()) => println!("  wrote {path}"),
            Err(err) => eprintln!("  failed to write {path}: {err}"),
        }
    }
    if want_opt_in("range") {
        // Same 10^5-fact default tier as `scale`; BENCH_RANGE_FACTS overrides.
        let target = std::env::var("BENCH_RANGE_FACTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100_000);
        let bench = rcqa_bench::bench_range(target, 5);
        println!("{}", rcqa_bench::format_range(&bench));
        let path =
            std::env::var("BENCH_RANGE_PATH").unwrap_or_else(|_| "BENCH_range.json".to_string());
        match std::fs::write(&path, bench.to_json()) {
            Ok(()) => println!("  wrote {path}"),
            Err(err) => eprintln!("  failed to write {path}: {err}"),
        }
    }
    if want_opt_in("incremental") {
        // Group counts span 16x so the scaling contrast (flat patched arm vs
        // group-proportional full recompute) is unmistakable even on a noisy
        // shared runner.
        let bench = rcqa_bench::bench_incremental(&[50, 200, 800], 16, 5);
        println!("{}", rcqa_bench::format_incremental(&bench));
        let path = std::env::var("BENCH_INCREMENTAL_PATH")
            .unwrap_or_else(|_| "BENCH_incremental.json".to_string());
        match std::fs::write(&path, bench.to_json()) {
            Ok(()) => println!("  wrote {path}"),
            Err(err) => eprintln!("  failed to write {path}: {err}"),
        }
    }
    if want_opt_in("parallel") {
        // Best-of-9 samples: the scaling floor is gated in CI on shared
        // runners, so favour noise immunity over a few seconds of runtime.
        let bench = rcqa_bench::bench_parallel(150, 9);
        println!("{}", rcqa_bench::format_parallel(&bench));
        write_scaling_artifact(
            "BENCH_PARALLEL_PATH",
            "BENCH_parallel.json",
            bench.to_json(),
        );
    }
    if want_opt_in("shard") {
        let bench = rcqa_bench::bench_shard(48, 8, 24, 5);
        println!("{}", rcqa_bench::format_shard(&bench));
        write_scaling_artifact("BENCH_SHARD_PATH", "BENCH_shard.json", bench.to_json());
    }
    ExitCode::SUCCESS
}
