//! The experiment harness: regenerates every experiment report (E1-E11).
//!
//! Usage:
//!   cargo run -p rcqa-bench --bin harness --release            # all experiments
//!   cargo run -p rcqa-bench --bin harness --release -- e3 e9   # selected ones
//!   cargo run -p rcqa-bench --bin harness --release -- groupby # E11 + BENCH_groupby.json
//!
//! The `groupby` mode additionally writes the machine-readable
//! `BENCH_groupby.json` (path overridable via the `BENCH_GROUPBY_PATH`
//! environment variable), tracking the one-pass pipeline's speedup over the
//! seed per-group strategy.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    println!("rcqa experiment harness — reproduction of PODS 2024 \"Computing Range");
    println!("Consistent Answers to Aggregation Queries via Rewriting\"\n");

    if want("e1") {
        println!("{}", rcqa_bench::e1());
    }
    if want("e2") {
        println!("{}", rcqa_bench::e2());
    }
    if want("e3") {
        println!("{}", rcqa_bench::e3());
    }
    if want("e4") {
        println!("{}", rcqa_bench::e4());
    }
    if want("e5") {
        println!("{}", rcqa_bench::e5());
    }
    if want("e6") {
        let sizes = [25, 50, 100, 200, 400, 800];
        let rows = rcqa_bench::e6(&sizes, 25);
        println!("{}", rcqa_bench::format_e6(&rows));
    }
    if want("e7") {
        println!("{}", rcqa_bench::e7(&[0.0, 0.05, 0.1, 0.2, 0.4]));
    }
    if want("e8") {
        println!("{}", rcqa_bench::e8());
    }
    if want("e9") {
        println!("{}", rcqa_bench::e9());
    }
    if want("e10") {
        println!("{}", rcqa_bench::e10());
    }
    // E11 is opt-in (it times two full pipeline arms): `harness groupby`.
    if args.iter().any(|a| a == "groupby" || a == "e11") {
        let bench = rcqa_bench::bench_groupby(150, 5);
        println!("{}", rcqa_bench::format_groupby(&bench));
        let path = std::env::var("BENCH_GROUPBY_PATH")
            .unwrap_or_else(|_| "BENCH_groupby.json".to_string());
        match std::fs::write(&path, bench.to_json()) {
            Ok(()) => println!("  wrote {path}"),
            Err(err) => eprintln!("  failed to write {path}: {err}"),
        }
    }
}
