//! # rcqa-bench
//!
//! Experiment harness for the `rcqa` workspace. Every experiment listed in
//! `DESIGN.md` / `EXPERIMENTS.md` (E1–E10) is implemented here as a function
//! that returns a printable report; the `harness` binary runs them and the
//! Criterion benches time the performance-sensitive ones.

#![warn(missing_docs)]

use rcqa_baselines::{fuxman_sum_glb, maxsat_glb};
use rcqa_core::engine::{GroupRange, RangeCqa};
use rcqa_core::exact::exact_bounds;
use rcqa_core::prepared::PreparedAggQuery;
use rcqa_core::rewrite::{rewriting_for, BoundKind};
use rcqa_core::{classify, forall};
use rcqa_data::{fact, DatabaseInstance, NumericDomain, Schema, Signature, Value};
use rcqa_gen::{fuxman_counterexample, JoinWorkload};
use rcqa_query::{parse_agg_query, AttackGraph};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// The Fig. 1 database instance `dbStock`.
pub fn db_stock() -> DatabaseInstance {
    let schema = Schema::new()
        .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
        .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());
    let mut db = DatabaseInstance::new(schema);
    db.insert_all([
        fact!("Dealers", "Smith", "Boston"),
        fact!("Dealers", "Smith", "New York"),
        fact!("Dealers", "James", "Boston"),
        fact!("Stock", "Tesla X", "Boston", 35),
        fact!("Stock", "Tesla X", "Boston", 40),
        fact!("Stock", "Tesla Y", "Boston", 35),
        fact!("Stock", "Tesla Y", "New York", 95),
        fact!("Stock", "Tesla Y", "New York", 96),
    ])
    .unwrap();
    db
}

/// The Fig. 3 database instance `db0`.
pub fn db0() -> DatabaseInstance {
    let schema = Schema::new()
        .with_relation("R", Signature::new(2, 1, []).unwrap())
        .with_relation("S", Signature::new(4, 2, [3]).unwrap());
    let mut db = DatabaseInstance::new(schema);
    db.insert_all([
        fact!("R", "a1", "b1"),
        fact!("R", "a1", "b2"),
        fact!("R", "a2", "b2"),
        fact!("R", "a2", "b3"),
        fact!("R", "a3", "b4"),
        fact!("S", "b1", "c1", "d", 1),
        fact!("S", "b1", "c1", "d", 2),
        fact!("S", "b1", "c2", "d", 3),
        fact!("S", "b2", "c3", "d", 5),
        fact!("S", "b2", "c3", "d", 6),
        fact!("S", "b3", "c4", "d", 5),
        fact!("S", "b4", "c5", "d", 7),
        fact!("S", "b4", "c5", "e", 8),
    ])
    .unwrap();
    db
}

fn fmt_bound(v: Option<rcqa_data::Rational>) -> String {
    match v {
        Some(r) => r.to_string(),
        None => "⊥".to_string(),
    }
}

/// E1 — Fig. 1 and the introduction query g0: GLB should be 70.
pub fn e1() -> String {
    let db = db_stock();
    let q = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
    let engine = RangeCqa::new(&q, db.schema()).unwrap();
    let glb = engine.glb(&db).unwrap();
    let lub = engine.lub(&db).unwrap();
    let mut out = String::new();
    writeln!(out, "E1  Fig. 1 + query g0 (introduction)").unwrap();
    writeln!(out, "  query        : {q}").unwrap();
    writeln!(out, "  paper glb    : 70 (repair marked with † in Fig. 1)").unwrap();
    writeln!(out, "  measured glb : {}", fmt_bound(glb[0].1.value)).unwrap();
    writeln!(out, "  measured lub : {}", fmt_bound(lub[0].1.value)).unwrap();
    out
}

/// E2 — Fig. 2 / Example 3.1: attack graph of q0 and its instantiation.
pub fn e2() -> String {
    let schema = Schema::new()
        .with_relation("R", Signature::new(2, 1, []).unwrap())
        .with_relation("S", Signature::new(3, 2, []).unwrap())
        .with_relation("T", Signature::new(3, 2, []).unwrap())
        .with_relation("N", Signature::new(3, 2, []).unwrap())
        .with_relation("M", Signature::new(2, 2, []).unwrap());
    let body =
        rcqa_query::parse_body("R(x, y), S(y, z, u), T(y, z, w), N(u, v, r), M(u, w)").unwrap();
    let graph = AttackGraph::new(&body, &schema);
    let mut out = String::new();
    writeln!(out, "E2  Fig. 2 / Example 3.1: attack graph of q0").unwrap();
    for (i, j) in graph.edge_list() {
        writeln!(
            out,
            "  {} ⇝ {}   ({})",
            graph.atom(i).relation(),
            graph.atom(j).relation(),
            if graph.is_weak_attack(i, j) {
                "weak"
            } else {
                "strong"
            }
        )
        .unwrap();
    }
    writeln!(out, "  acyclic      : {}", graph.is_acyclic()).unwrap();
    writeln!(
        out,
        "  paper says   : acyclic, R attacks S, T, N, M; S attacks N, M; T attacks M"
    )
    .unwrap();
    out
}

/// E3 — Fig. 3–5 / Section 6.1: ∀embeddings M0 and GLB = 9, plus the symbolic
/// rewriting.
pub fn e3() -> String {
    let db = db0();
    let q = parse_agg_query("SUM(r) <- R(x, y), S(y, z, 'd', r)").unwrap();
    let prepared = PreparedAggQuery::new(&q, db.schema()).unwrap();
    let analysis = forall::analyse(&prepared.body, &db);
    let engine = RangeCqa::new(&q, db.schema()).unwrap();
    let glb = engine.glb(&db).unwrap();
    let rewriting = rewriting_for(&prepared, BoundKind::Glb).unwrap();
    let mut out = String::new();
    writeln!(out, "E3  Fig. 3–5 / Section 6.1 running example").unwrap();
    writeln!(out, "  query                  : {q}").unwrap();
    writeln!(
        out,
        "  |embeddings|           : {} (paper: 9)",
        analysis.embeddings.len()
    )
    .unwrap();
    writeln!(
        out,
        "  |∀embeddings| (M0)     : {} (paper: 8)",
        analysis.forall_embeddings.len()
    )
    .unwrap();
    writeln!(out, "  paper glb              : 9").unwrap();
    writeln!(
        out,
        "  measured glb           : {}",
        fmt_bound(glb[0].1.value)
    )
    .unwrap();
    writeln!(out, "  rewriting size (nodes) : {}", rewriting.size()).unwrap();
    writeln!(out, "  certainty rewriting    : {}", rewriting.certainty).unwrap();
    out
}

/// E4 — Examples 4.1 / 4.4: ∀embeddings over dbStock.
pub fn e4() -> String {
    let db = db_stock();
    let q = parse_agg_query("COUNT(*) <- Dealers('James', t), Stock(p, t, 35)").unwrap();
    let prepared = PreparedAggQuery::new(&q, db.schema()).unwrap();
    let analysis = forall::analyse(&prepared.body, &db);
    let mut out = String::new();
    writeln!(
        out,
        "E4  Examples 4.1 / 4.4: ∀embeddings of q0 over dbStock"
    )
    .unwrap();
    writeln!(
        out,
        "  certain (0-∀embedding exists) : {} (paper: yes)",
        analysis.certain
    )
    .unwrap();
    writeln!(
        out,
        "  embeddings                    : {} (paper: 2)",
        analysis.embeddings.len()
    )
    .unwrap();
    writeln!(
        out,
        "  ∀embeddings                   : {} (paper: 1, namely t=Boston, p=Tesla Y)",
        analysis.forall_embeddings.len()
    )
    .unwrap();
    for e in &analysis.forall_embeddings {
        writeln!(out, "    ∀embedding: {e:?}").unwrap();
    }
    out
}

/// E5 — The separation theorem (Theorem 1.1 / 7.11) on a suite of queries.
pub fn e5() -> String {
    let schema = Schema::new()
        .with_relation("R", Signature::new(2, 1, [1]).unwrap())
        .with_relation("S", Signature::new(4, 2, [3]).unwrap())
        .with_relation("S1", Signature::new(2, 1, []).unwrap())
        .with_relation("S2", Signature::new(2, 1, []).unwrap())
        .with_relation("T", Signature::new(3, 2, [2]).unwrap())
        .with_relation("U", Signature::new(2, 1, [1]).unwrap());
    let suite = [
        "SUM(r) <- R(x, r), S(x, z, 'd', r)",
        "SUM(r) <- S1(x, 'c1'), S2(y, 'c2'), T(x, y, r)",
        "SUM(y) <- R(x, y), U(y, x)",
        "MAX(r) <- R(x, r), S(x, z, 'd', r)",
        "MIN(r) <- R(x, r), S(x, z, 'd', r)",
        "AVG(r) <- R(x, r), S(x, z, 'd', r)",
        "COUNT(*) <- R(x, y), S(x, z, 'd', r)",
        "COUNT-DISTINCT(r) <- R(x, r)",
    ];
    let mut out = String::new();
    writeln!(
        out,
        "E5  Separation decision (Theorems 1.1, 5.5, 6.1, 7.10, 7.11)"
    )
    .unwrap();
    writeln!(
        out,
        "  {:<48} {:>8} {:>14} {:>14}",
        "query", "acyclic", "GLB", "LUB"
    )
    .unwrap();
    for text in suite {
        let q = parse_agg_query(text).unwrap();
        let c = classify(&q, &schema).unwrap();
        let short = |e: &rcqa_core::Expressibility| match e {
            rcqa_core::Expressibility::Rewritable { .. } => "rewritable",
            rcqa_core::Expressibility::NotRewritable { .. } => "no rewriting",
            rcqa_core::Expressibility::Open { .. } => "open/fallback",
        };
        writeln!(
            out,
            "  {:<48} {:>8} {:>14} {:>14}",
            text,
            c.attack_graph_acyclic,
            short(&c.glb),
            short(&c.lub)
        )
        .unwrap();
    }
    out
}

/// One row of the scaling experiment E6.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Number of facts in the instance.
    pub facts: usize,
    /// Number of inconsistent blocks.
    pub inconsistent_blocks: usize,
    /// GLB computed by the rewriting-based engine.
    pub rewriting_glb: Option<rcqa_data::Rational>,
    /// Time (milliseconds) of the rewriting-based engine.
    pub rewriting_ms: f64,
    /// Time (milliseconds) of the MaxSAT baseline (None if skipped).
    pub maxsat_ms: Option<f64>,
    /// Time (milliseconds) of exact repair enumeration (None if skipped).
    pub exact_ms: Option<f64>,
    /// Whether all computed answers agreed.
    pub agree: bool,
}

/// E6 — scaling of the rewriting-based engine vs the MaxSAT baseline vs exact
/// enumeration on the two-relation join workload.
pub fn e6(sizes: &[usize], with_baselines_up_to: usize) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        let cfg = JoinWorkload {
            r_blocks: n,
            y_domain: (n / 2).max(1),
            s_blocks_per_y: 2,
            inconsistency_ratio: 0.1,
            block_size: 2,
            max_value: 100,
            seed: 7,
        };
        let db = cfg.generate();
        let query = cfg.sum_query();
        let engine = RangeCqa::new(&query, &cfg.schema()).unwrap();
        let prepared = PreparedAggQuery::new(&query, &cfg.schema()).unwrap();

        let t0 = Instant::now();
        let glb = engine.glb(&db).unwrap()[0].1.value;
        let rewriting_ms = t0.elapsed().as_secs_f64() * 1e3;

        let (maxsat_ms, maxsat_glb_val) = if n <= with_baselines_up_to {
            let t = Instant::now();
            let m = maxsat_glb(&prepared, &db).ok();
            (Some(t.elapsed().as_secs_f64() * 1e3), m.and_then(|m| m.glb))
        } else {
            (None, None)
        };
        let (exact_ms, exact_glb_val) = if n <= with_baselines_up_to {
            let t = Instant::now();
            let e = exact_bounds(&prepared, &db, 1 << 24).ok();
            (Some(t.elapsed().as_secs_f64() * 1e3), e.and_then(|e| e.glb))
        } else {
            (None, None)
        };
        let agree = maxsat_glb_val.map(|m| Some(m) == glb).unwrap_or(true)
            && exact_glb_val.map(|e| Some(e) == glb).unwrap_or(true);
        rows.push(ScalingRow {
            facts: db.len(),
            inconsistent_blocks: db.inconsistent_block_count(),
            rewriting_glb: glb,
            rewriting_ms,
            maxsat_ms,
            exact_ms,
            agree,
        });
    }
    rows
}

/// Formats the E6 rows as a table.
pub fn format_e6(rows: &[ScalingRow]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E6  GLB(SUM) scaling: rewriting vs MaxSAT vs exact enumeration"
    )
    .unwrap();
    writeln!(
        out,
        "  {:>8} {:>10} {:>12} {:>14} {:>14} {:>14} {:>7}",
        "facts", "bad blk", "glb", "rewriting ms", "maxsat ms", "exact ms", "agree"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "  {:>8} {:>10} {:>12} {:>14.2} {:>14} {:>14} {:>7}",
            r.facts,
            r.inconsistent_blocks,
            fmt_bound(r.rewriting_glb),
            r.rewriting_ms,
            r.maxsat_ms
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".into()),
            r.exact_ms
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".into()),
            r.agree
        )
        .unwrap();
    }
    out
}

/// E7 — sensitivity to the inconsistency ratio at fixed size.
pub fn e7(ratios: &[f64]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E7  Sensitivity to the inconsistency ratio (fixed ~600-fact instance)"
    )
    .unwrap();
    writeln!(
        out,
        "  {:>8} {:>8} {:>10} {:>12} {:>14}",
        "ratio", "facts", "bad blk", "glb", "rewriting ms"
    )
    .unwrap();
    for &ratio in ratios {
        let cfg = JoinWorkload {
            r_blocks: 200,
            y_domain: 100,
            s_blocks_per_y: 2,
            inconsistency_ratio: ratio,
            block_size: 2,
            max_value: 100,
            seed: 11,
        };
        let db = cfg.generate();
        let engine = RangeCqa::new(&cfg.sum_query(), &cfg.schema()).unwrap();
        let t0 = Instant::now();
        let glb = engine.glb(&db).unwrap()[0].1.value;
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        writeln!(
            out,
            "  {:>8.2} {:>8} {:>10} {:>12} {:>14.2}",
            ratio,
            db.len(),
            db.inconsistent_block_count(),
            fmt_bound(glb),
            ms
        )
        .unwrap();
    }
    out
}

/// E8 — GROUP BY range semantics (Section 6.2), answered through the SQL
/// session facade so the harness exercises the same
/// parse → classify → plan → execute path as every other consumer.
pub fn e8() -> String {
    let catalog = rcqa_query::Catalog::new()
        .with_table(
            rcqa_query::TableDef::new("Dealers")
                .key_column("Name")
                .column("Town"),
        )
        .with_table(
            rcqa_query::TableDef::new("Stock")
                .key_column("Product")
                .key_column("Town")
                .numeric_column("Qty"),
        );
    let session = rcqa_session::Session::with_instance(catalog, db_stock());
    let sql = "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
               WHERE D.Town = S.Town GROUP BY D.Name";
    let outcome = session.execute(sql).expect("E8 query executes");
    let mut out = String::new();
    writeln!(
        out,
        "E8  GROUP BY range semantics (Section 1 / 6.2 SQL example, via rcqa-session)"
    )
    .unwrap();
    writeln!(out, "  SQL: {sql}").unwrap();
    writeln!(out, "  {:<10} {:>8} {:>8}", "dealer", "glb", "lub").unwrap();
    for row in outcome.rows.iter() {
        writeln!(
            out,
            "  {:<10} {:>8} {:>8}",
            row.key[0].to_string(),
            fmt_bound(row.glb.unwrap().value),
            fmt_bound(row.lub.unwrap().value)
        )
        .unwrap();
    }
    writeln!(out, "  expected: James [70, 75], Smith [70, 96]").unwrap();
    out
}

/// E9 — the Section 7.3 refutation of Fuxman's Caggforest claim.
pub fn e9() -> String {
    let (db, query) = fuxman_counterexample();
    let prepared = PreparedAggQuery::new(&query, db.schema()).unwrap();
    let exact = exact_bounds(&prepared, &db, 1 << 20).unwrap();
    let fux = fuxman_sum_glb(&prepared, &db).unwrap();
    let engine = RangeCqa::new(&query, db.schema()).unwrap();
    let ours = engine.glb(&db).unwrap()[0].1;
    let classification =
        rcqa_core::classify_with_domain(&query, db.schema(), NumericDomain::Unconstrained).unwrap();
    let mut out = String::new();
    writeln!(
        out,
        "E9  Section 7.3: refuting the Caggforest claim of [21]"
    )
    .unwrap();
    writeln!(out, "  query                     : {query}").unwrap();
    writeln!(
        out,
        "  in Caggforest             : {}",
        classification.in_caggforest
    )
    .unwrap();
    writeln!(
        out,
        "  exact glb (ground truth)  : {}",
        fmt_bound(exact.glb)
    )
    .unwrap();
    writeln!(out, "  Fuxman-style rewriting    : {}", fux.glb).unwrap();
    writeln!(
        out,
        "  rcqa engine ({:?})  : {}",
        ours.method,
        fmt_bound(ours.value)
    )
    .unwrap();
    writeln!(
        out,
        "  flaw reproduced           : {} (Fuxman bound exceeds the true glb)",
        Some(fux.glb) > exact.glb
    )
    .unwrap();
    out
}

/// E10 — MIN/MAX separation (Theorem 7.11) and growth of the rewriting size
/// with query size (Theorem 1.1 promises a quadratic bound).
pub fn e10() -> String {
    let db = db0();
    let mut out = String::new();
    writeln!(out, "E10 MIN/MAX bounds and rewriting-size growth").unwrap();
    for text in [
        "MIN(r) <- R(x, y), S(y, z, 'd', r)",
        "MAX(r) <- R(x, y), S(y, z, 'd', r)",
    ] {
        let q = parse_agg_query(text).unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap()[0].1;
        let lub = engine.lub(&db).unwrap()[0].1;
        writeln!(
            out,
            "  {:<40} glb={:<4} ({:?}), lub={:<4} ({:?})",
            text,
            fmt_bound(glb.value),
            glb.method,
            fmt_bound(lub.value),
            lub.method
        )
        .unwrap();
    }
    writeln!(out, "  rewriting size vs query size (chain queries):").unwrap();
    writeln!(
        out,
        "  {:>6} {:>16} {:>16}",
        "atoms", "certainty size", "total size"
    )
    .unwrap();
    for k in 1..=6usize {
        let mut schema = Schema::new();
        let mut atoms = Vec::new();
        for i in 0..k {
            schema.add_relation(format!("C{i}"), Signature::new(2, 1, [1]).unwrap());
            atoms.push(format!("C{i}(x{i}, x{})", i + 1));
        }
        let text = format!("SUM(x{k}) <- {}", atoms.join(", "));
        let q = PreparedAggQuery::new(&parse_agg_query(&text).unwrap(), &schema).unwrap();
        let rewriting = rewriting_for(&q, BoundKind::Glb).unwrap();
        writeln!(
            out,
            "  {:>6} {:>16} {:>16}",
            k,
            rewriting.certainty.size(),
            rewriting.size()
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_experiments_report_expected_numbers() {
        assert!(e1().contains("measured glb : 70"));
        assert!(e2().contains("acyclic      : true"));
        let e3_out = e3();
        assert!(e3_out.contains("(M0)     : 8"));
        assert!(e3_out.contains("measured glb           : 9"));
        assert!(e4().contains("∀embeddings                   : 1"));
        assert!(e5().contains("rewritable"));
        assert!(e8().contains("James"));
        assert!(e9().contains("flaw reproduced           : true"));
        assert!(e10().contains("glb=1"));
    }

    #[test]
    fn scaling_experiment_small() {
        let rows = e6(&[20, 30], 25);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.agree));
        let table = format_e6(&rows);
        assert!(table.contains("rewriting ms"));
        assert!(e7(&[0.0, 0.2]).contains("Sensitivity"));
    }

    #[test]
    fn parallel_bench_agrees_and_serialises() {
        let bench = bench_parallel(24, 1);
        assert!(bench.groups > 0);
        assert!(bench.agree, "thread counts must return identical answers");
        assert_eq!(bench.threads, vec![1, 2, 4]);
        let json = bench.to_json();
        assert!(json.contains("\"threads\": [1, 2, 4]"));
        assert!(json.contains("\"speedup_at_4\": "));
        assert!(format_parallel(&bench).contains("answers agree : true"));
    }

    #[test]
    fn scale_bench_agrees_and_serialises() {
        let bench = bench_scale(3_000, 1);
        assert!(bench.facts >= 3_000);
        assert!(bench.groups > 0);
        assert!(
            bench.agree,
            "row and columnar layouts must compute identical group maps"
        );
        assert!(bench.row_peak_bytes > 0 && bench.columnar_peak_bytes > 0);
        let json = bench.to_json();
        assert!(json.contains("\"benchmark\": \"scale_interned_columnar_vs_row\""));
        assert!(json.contains("\"speedup\": "));
        assert!(json.contains("\"agree\": true"));
        assert!(format_scale(&bench).contains("answers agree   : true"));
    }

    #[test]
    fn range_bench_agrees_and_serialises() {
        let bench = bench_range(3_000, 1);
        assert!(bench.facts >= 3_000);
        assert!(bench.groups > 0);
        assert!(bench.matched_groups > 0, "the x9* family must be non-empty");
        assert!(
            bench.matched_groups < bench.groups,
            "the range predicate must be selective"
        );
        assert!(bench.agree, "seek and forced-scan arms must agree");
        assert!(bench.seek_path_used, "the planner must choose the seek");
        let json = bench.to_json();
        assert!(json.contains("\"benchmark\": \"range_seek_vs_full_scan\""));
        assert!(json.contains("\"speedup\": "));
        assert!(json.contains("\"agree\": true"));
        assert!(format_range(&bench).contains("answers agree  : true"));
    }

    #[test]
    fn groupby_bench_agrees_and_serialises() {
        let bench = bench_groupby(24, 2);
        assert!(bench.groups > 0);
        assert!(bench.agree, "one-pass and seed strategies must agree");
        let json = bench.to_json();
        assert!(json.contains("\"groups\": "));
        assert!(json.contains("\"speedup\": "));
        assert!(format_groupby(&bench).contains("answers agree : true"));
    }
}

/// The seed evaluation strategy for grouped GLB(SUM) queries, retained as a
/// regression baseline for the one-pass pipeline: enumerate candidate groups
/// (one index build), then **per group** re-substitute the key, re-run query
/// preparation (attack graph included), rebuild the database index, and
/// evaluate the closed query from scratch. A GROUP BY query over `G` groups
/// therefore pays `G + 1` index builds and `G` preparations per bound, which
/// is exactly what `BENCH_groupby.json` measures the new pipeline against.
pub mod legacy {
    use rcqa_core::engine::{candidate_groups, substitute_group};
    use rcqa_core::forall::analyse;
    use rcqa_core::glb::optimal_aggregate;
    use rcqa_core::prepared::PreparedAggQuery;
    use rcqa_core::Choice;
    use rcqa_data::{AggFunc, DatabaseInstance, Rational, Schema, Value};
    use rcqa_query::AggQuery;

    /// Grouped GLB of a SUM query, one full re-preparation and index rebuild
    /// per group (the pre-optimisation engine behaviour).
    pub fn grouped_sum_glb(
        query: &AggQuery,
        schema: &Schema,
        db: &DatabaseInstance,
    ) -> Vec<(Vec<Value>, Option<Rational>)> {
        let prepared = PreparedAggQuery::new(query, schema).expect("benchmark query prepares");
        let groups = candidate_groups(&prepared, db);
        let mut out = Vec::with_capacity(groups.len());
        for key in groups {
            let closed = substitute_group(&prepared, &key).expect("group key substitutes");
            let analysis = analyse(&closed.body, db);
            let value = if analysis.certain {
                optimal_aggregate(
                    closed.body.levels(),
                    &analysis.forall_embeddings,
                    &closed.normalised.term,
                    AggFunc::Sum,
                    Choice::Minimise,
                )
            } else {
                None
            };
            out.push((key, value));
        }
        out
    }
}

/// Result of the GROUP BY pipeline benchmark (E11): the one-pass engine vs
/// the seed per-group strategy on the same grouped SUM workload.
#[derive(Clone, Debug)]
pub struct GroupbyBench {
    /// Number of GROUP BY groups answered.
    pub groups: usize,
    /// Number of facts in the instance.
    pub facts: usize,
    /// Number of timed samples per arm (best sample reported).
    pub samples: usize,
    /// Best wall-clock time of the one-pass engine (milliseconds).
    pub optimized_ms: f64,
    /// Best wall-clock time of the seed strategy (milliseconds).
    pub legacy_ms: f64,
    /// `legacy_ms / optimized_ms`.
    pub speedup: f64,
    /// Whether both strategies returned identical per-group answers.
    pub agree: bool,
}

impl GroupbyBench {
    /// Machine-readable JSON encoding (no external serialisation crates in
    /// this offline workspace, so the fields are written by hand).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"groupby_one_pass_vs_seed\",\n  \"groups\": {},\n  \
             \"facts\": {},\n  \"samples\": {},\n  \"optimized_ms\": {:.3},\n  \
             \"legacy_ms\": {:.3},\n  \"speedup\": {:.2},\n  \"agree\": {}\n}}\n",
            self.groups,
            self.facts,
            self.samples,
            self.optimized_ms,
            self.legacy_ms,
            self.speedup,
            self.agree
        )
    }
}

/// Best-of-`samples` wall-clock milliseconds for repeated runs of `f` (the
/// timing discipline shared by E11 and E12).
fn best_of_ms(samples: usize, f: &mut dyn FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// E11 — GROUP BY scaling: the one-pass shared-index pipeline vs the seed
/// per-group re-preparation strategy, on a grouped SUM workload with
/// `r_blocks` groups. Reports best-of-`samples` wall-clock per arm. Both
/// arms are pinned to one executor thread so the measurement isolates the
/// one-pass pipeline itself (E12 / `bench_parallel` measures threading).
pub fn bench_groupby(r_blocks: usize, samples: usize) -> GroupbyBench {
    let cfg = JoinWorkload {
        r_blocks,
        y_domain: (r_blocks / 2).max(1),
        s_blocks_per_y: 2,
        inconsistency_ratio: 0.1,
        block_size: 2,
        max_value: 100,
        seed: 13,
    };
    let db = cfg.generate();
    let query = cfg.grouped_sum_query();
    let schema = cfg.schema();
    let engine = RangeCqa::new(&query, &schema)
        .expect("benchmark query prepares")
        .with_options(rcqa_core::engine::EngineOptions {
            threads: 1,
            ..Default::default()
        });

    let best = |f: &mut dyn FnMut()| -> f64 { best_of_ms(samples, f) };

    let mut optimized: Vec<(Vec<rcqa_data::Value>, Option<rcqa_data::Rational>)> = Vec::new();
    let optimized_ms = best(&mut || {
        optimized = engine
            .glb(&db)
            .expect("benchmark query evaluates")
            .into_iter()
            .map(|(k, a)| (k, a.value))
            .collect();
    });
    let mut legacy_answers: Vec<(Vec<rcqa_data::Value>, Option<rcqa_data::Rational>)> = Vec::new();
    let legacy_ms = best(&mut || {
        legacy_answers = legacy::grouped_sum_glb(&query, &schema, &db);
    });

    GroupbyBench {
        groups: optimized.len(),
        facts: db.len(),
        samples: samples.max(1),
        optimized_ms,
        legacy_ms,
        speedup: legacy_ms / optimized_ms.max(f64::MIN_POSITIVE),
        agree: optimized == legacy_answers,
    }
}

/// Result of the parallel-executor scaling benchmark (E12): the block-sharded
/// worker pool at increasing thread counts on the grouped SUM workload.
#[derive(Clone, Debug)]
pub struct ParallelBench {
    /// Number of GROUP BY groups answered.
    pub groups: usize,
    /// Number of facts in the instance.
    pub facts: usize,
    /// Number of timed samples per arm (best sample reported).
    pub samples: usize,
    /// The thread counts measured (first entry is the sequential baseline).
    pub threads: Vec<usize>,
    /// Best wall-clock time (milliseconds) per thread count.
    pub ms: Vec<f64>,
    /// Speedup of 4 threads over 1 thread (`ms[1T] / ms[4T]`).
    pub speedup_at_4: f64,
    /// Whether every thread count returned answers identical to 1 thread.
    pub agree: bool,
    /// The machine's available parallelism while measuring. Scaling floors
    /// only make sense when this is at least the measured thread count: on a
    /// single-core box, 4 workers can only add overhead.
    pub available_parallelism: usize,
}

impl ParallelBench {
    /// Machine-readable JSON encoding (no external serialisation crates in
    /// this offline workspace, so the fields are written by hand).
    pub fn to_json(&self) -> String {
        let join = |xs: &[String]| xs.join(", ");
        format!(
            "{{\n  \"benchmark\": \"groupby_parallel_scaling\",\n  \"groups\": {},\n  \
             \"facts\": {},\n  \"samples\": {},\n  \"threads\": [{}],\n  \"ms\": [{}],\n  \
             \"speedup_at_4\": {:.2},\n  \"agree\": {},\n  \
             \"available_parallelism\": {}\n}}\n",
            self.groups,
            self.facts,
            self.samples,
            join(
                &self
                    .threads
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
            ),
            join(
                &self
                    .ms
                    .iter()
                    .map(|m| format!("{m:.3}"))
                    .collect::<Vec<_>>()
            ),
            self.speedup_at_4,
            self.agree,
            self.available_parallelism
        )
    }
}

/// E12 — parallel-executor scaling: the block-sharded worker pool at 1, 2, 4
/// (and, hardware permitting, 8) threads on a grouped SUM workload with
/// `r_blocks` groups. The GLB of SUM is rewriting-backed, so the whole run
/// stays on the one-pass pipeline; only the worker count varies. Reports
/// best-of-`samples` wall-clock per arm.
pub fn bench_parallel(r_blocks: usize, samples: usize) -> ParallelBench {
    // A wide y-domain keeps the per-group certainty sub-problems mostly
    // disjoint, so per-worker memoisation loses little against the shared
    // sequential memo and the parallel region scales close to linearly.
    let cfg = JoinWorkload {
        r_blocks,
        y_domain: r_blocks.max(1),
        s_blocks_per_y: 8,
        inconsistency_ratio: 0.3,
        block_size: 3,
        max_value: 100,
        seed: 17,
    };
    let db = cfg.generate();
    let query = cfg.grouped_sum_query();
    let schema = cfg.schema();

    let best = |f: &mut dyn FnMut()| -> f64 { best_of_ms(samples, f) };

    let thread_counts = vec![1usize, 2, 4];
    let mut ms = Vec::with_capacity(thread_counts.len());
    let mut baseline: Vec<(Vec<rcqa_data::Value>, rcqa_core::engine::BoundAnswer)> = Vec::new();
    let mut agree = true;
    for (i, &threads) in thread_counts.iter().enumerate() {
        let engine = RangeCqa::new(&query, &schema)
            .expect("benchmark query prepares")
            .with_options(rcqa_core::engine::EngineOptions {
                threads,
                ..Default::default()
            });
        let mut answers = Vec::new();
        ms.push(best(&mut || {
            answers = engine.glb(&db).expect("benchmark query evaluates");
        }));
        if i == 0 {
            baseline = answers;
        } else {
            agree = agree && answers == baseline;
        }
    }
    let speedup_at_4 =
        ms[0] / ms[thread_counts.iter().position(|&t| t == 4).unwrap()].max(f64::MIN_POSITIVE);
    ParallelBench {
        groups: baseline.len(),
        facts: db.len(),
        samples: samples.max(1),
        threads: thread_counts,
        ms,
        speedup_at_4,
        agree,
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Formats the E12 report for the harness.
pub fn format_parallel(bench: &ParallelBench) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E12 Parallel executor: block-sharded worker pool scaling (GLB of grouped SUM)"
    )
    .unwrap();
    writeln!(out, "  groups        : {}", bench.groups).unwrap();
    writeln!(out, "  facts         : {}", bench.facts).unwrap();
    for (t, ms) in bench.threads.iter().zip(bench.ms.iter()) {
        writeln!(out, "  threads = {t:<3} : {ms:.3} ms").unwrap();
    }
    writeln!(out, "  speedup @4T   : {:.2}x", bench.speedup_at_4).unwrap();
    writeln!(out, "  answers agree : {}", bench.agree).unwrap();
    writeln!(
        out,
        "  machine cores : {} (speedup is only meaningful with ≥4)",
        bench.available_parallelism
    )
    .unwrap();
    out
}

/// Formats the E11 report for the harness.
pub fn format_groupby(bench: &GroupbyBench) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E11 GROUP BY: one-pass shared-index pipeline vs seed strategy"
    )
    .unwrap();
    writeln!(out, "  groups        : {}", bench.groups).unwrap();
    writeln!(out, "  facts         : {}", bench.facts).unwrap();
    writeln!(out, "  one-pass ms   : {:.3}", bench.optimized_ms).unwrap();
    writeln!(out, "  seed-strategy : {:.3} ms", bench.legacy_ms).unwrap();
    writeln!(out, "  speedup       : {:.2}x", bench.speedup).unwrap();
    writeln!(out, "  answers agree : {}", bench.agree).unwrap();
    out
}

/// Result of the serving-session benchmark (E13): one warm [`rcqa_session::Session`]
/// (statement cache + cached incrementally-maintained index + result cache)
/// against per-call cold sessions, on a repeated grouped MAX query, plus
/// insert-then-query latency through the delta path vs full cold rebuilds.
#[derive(Clone, Debug)]
pub struct ServingBench {
    /// Number of GROUP BY groups answered.
    pub groups: usize,
    /// Number of facts in the instance.
    pub facts: usize,
    /// Number of timed samples per arm (best sample reported).
    pub samples: usize,
    /// Repeated executions of the same SQL per throughput arm.
    pub queries: usize,
    /// Best wall-clock total (ms) for `queries` per-call cold sessions.
    pub cold_ms: f64,
    /// Best wall-clock total (ms) for `queries` executes on one warm session.
    pub warm_ms: f64,
    /// `cold_ms / warm_ms` — the serving-layer speedup.
    pub speedup: f64,
    /// Insert-then-query rounds per latency arm.
    pub updates: usize,
    /// Best per-round latency (ms) rebuilding a cold session per update.
    pub cold_update_ms: f64,
    /// Best per-round latency (ms) on the warm session (delta replay +
    /// dirty-group recomputation).
    pub warm_update_ms: f64,
    /// `cold_update_ms / warm_update_ms`.
    pub update_speedup: f64,
    /// Dirty-group (partial) recomputations the warm session performed during
    /// the update arm — evidence the delta path, not a rebuild, served it.
    pub warm_partial_recomputes: u64,
    /// Facts in the scaled-up instance of the write-cost arm (~10x `facts`).
    pub large_facts: usize,
    /// Best per-write commit latency (ms) on the warm session over the base
    /// instance (insert only — no query — through the structurally-shared
    /// snapshot path).
    pub write_ms: f64,
    /// Best per-write commit latency (ms) on the warm session over the
    /// `large_facts` instance. The written relation is the same size in both
    /// arms; only the rest of the database grows.
    pub write_large_ms: f64,
    /// `write_large_ms / write_ms` — how write cost scales with database
    /// size. Structurally-shared snapshots keep this near 1 (a write copies
    /// only what it touches); the old deep-clone-per-commit snapshots scaled
    /// it with `|db|` (~10x here).
    pub write_cost_ratio: f64,
    /// Whether every arm returned identical rows: warm vs cold, sequential vs
    /// 4-thread, before and after the update sequence.
    pub agree: bool,
}

impl ServingBench {
    /// Machine-readable JSON encoding (no external serialisation crates in
    /// this offline workspace, so the fields are written by hand).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"serving_warm_session_vs_cold\",\n  \"groups\": {},\n  \
             \"facts\": {},\n  \"samples\": {},\n  \"queries\": {},\n  \"cold_ms\": {:.3},\n  \
             \"warm_ms\": {:.3},\n  \"speedup\": {:.2},\n  \"updates\": {},\n  \
             \"cold_update_ms\": {:.3},\n  \"warm_update_ms\": {:.3},\n  \
             \"update_speedup\": {:.2},\n  \"warm_partial_recomputes\": {},\n  \
             \"large_facts\": {},\n  \"write_ms\": {:.4},\n  \"write_large_ms\": {:.4},\n  \
             \"write_cost_ratio\": {:.2},\n  \"agree\": {}\n}}\n",
            self.groups,
            self.facts,
            self.samples,
            self.queries,
            self.cold_ms,
            self.warm_ms,
            self.speedup,
            self.updates,
            self.cold_update_ms,
            self.warm_update_ms,
            self.update_speedup,
            self.warm_partial_recomputes,
            self.large_facts,
            self.write_ms,
            self.write_large_ms,
            self.write_cost_ratio,
            self.agree
        )
    }
}

/// E13 — the serving layer: repeated-query throughput of one warm session
/// (statement + index + result caches) vs per-call cold sessions, and
/// insert-then-query latency through block-level delta maintenance vs cold
/// rebuilds. The grouped MAX query is rewriting-backed on both bounds, so
/// every arm stays on the one-pass pipeline. Instance clones happen outside
/// every timed region. The throughput arms pre-build their sessions and time
/// parse/classify/plan/index/evaluate work only; the **cold update arm
/// deliberately times per-round `Session` construction too** — standing up a
/// session over the mutated instance is exactly the cost a per-call cold
/// server pays, and is what `update_speedup` compares the warm delta path
/// against.
pub fn bench_serving(r_blocks: usize, queries: usize, samples: usize) -> ServingBench {
    use rcqa_data::{Fact, Value};
    use rcqa_query::{Catalog, TableDef};
    use rcqa_session::Session;

    let cfg = JoinWorkload {
        r_blocks,
        y_domain: (r_blocks / 2).max(1),
        s_blocks_per_y: 2,
        inconsistency_ratio: 0.1,
        block_size: 2,
        max_value: 100,
        seed: 13,
    };
    let db = cfg.generate();
    let catalog = || {
        Catalog::new()
            .with_table(TableDef::new("R").key_column("X").column("Y"))
            .with_table(
                TableDef::new("S")
                    .key_column("Y")
                    .key_column("Z")
                    .numeric_column("Qty"),
            )
    };
    let sql = "SELECT R.X, MAX(S.Qty) FROM R, S WHERE R.Y = S.Y GROUP BY R.X";
    let samples = samples.max(1);
    let queries = queries.max(2);

    // Repeated-query throughput: per-call cold sessions ...
    let mut cold_ms = f64::INFINITY;
    let mut cold_rows: Arc<[GroupRange]> = Arc::from(Vec::new());
    for _ in 0..samples {
        let sessions: Vec<Session> = (0..queries)
            .map(|_| Session::with_instance(catalog(), db.clone()))
            .collect();
        let t0 = Instant::now();
        for session in &sessions {
            cold_rows = session.execute(sql).expect("cold execute").rows;
        }
        cold_ms = cold_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    // ... vs one warm session.
    let mut warm_ms = f64::INFINITY;
    let mut warm_rows: Arc<[GroupRange]> = Arc::from(Vec::new());
    for _ in 0..samples {
        let session = Session::with_instance(catalog(), db.clone());
        let t0 = Instant::now();
        for _ in 0..queries {
            warm_rows = session.execute(sql).expect("warm execute").rows;
        }
        warm_ms = warm_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let mut agree = cold_rows == warm_rows;
    // Caching must be thread-transparent too.
    for threads in [1usize, 4] {
        let session = Session::with_instance(catalog(), db.clone()).with_options(
            rcqa_core::engine::EngineOptions {
                threads,
                ..Default::default()
            },
        );
        session.execute(sql).expect("threaded warm-up");
        agree = agree && session.execute(sql).expect("threaded repeat").rows == warm_rows;
    }

    // Insert-then-query latency. Both arms apply the same update sequence:
    // a new `R` block per round (joins on y0, so the new group is non-empty).
    let updates = 16usize;
    let update_fact =
        |u: usize| Fact::new("R", [Value::text(format!("xu{u:03}")), Value::text("y0")]);
    let mut warm_update_ms = f64::INFINITY;
    let mut warm_partial_recomputes = 0;
    let mut warm_final_rows: Arc<[GroupRange]> = Arc::from(Vec::new());
    for _ in 0..samples {
        let session = Session::with_instance(catalog(), db.clone());
        session.execute(sql).expect("warm-up");
        let partials_before = session.stats().partial_recomputes;
        let t0 = Instant::now();
        for u in 0..updates {
            session.insert(update_fact(u)).expect("warm insert");
            warm_final_rows = session.execute(sql).expect("warm update query").rows;
        }
        warm_update_ms = warm_update_ms.min(t0.elapsed().as_secs_f64() * 1e3 / updates as f64);
        warm_partial_recomputes = session.stats().partial_recomputes - partials_before;
    }
    // Write-cost scaling: the same per-write commit (insert only, no query)
    // against the base instance and against one ~10x larger. The written
    // relation (`R`) is identical in both; only `S` grows — so with
    // structurally-shared snapshots the two latencies coincide, while a
    // deep-clone-per-commit write path pays for the whole database and
    // scales ~10x. Each timed write replays its delta into the warm index
    // (the session is warmed first), exactly like a serving write.
    let large_db = JoinWorkload {
        s_blocks_per_y: cfg.s_blocks_per_y * 20,
        ..cfg
    }
    .generate();
    let measure_write = |db: &DatabaseInstance| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let session = Session::with_instance(catalog(), db.clone());
            session.execute(sql).expect("write-arm warm-up");
            let t0 = Instant::now();
            for u in 0..updates {
                session.insert(update_fact(u)).expect("write-arm insert");
            }
            best = best.min(t0.elapsed().as_secs_f64() * 1e3 / updates as f64);
        }
        best
    };
    let write_ms = measure_write(&db);
    let write_large_ms = measure_write(&large_db);

    let mut cold_update_ms = f64::INFINITY;
    let mut cold_final_rows: Arc<[GroupRange]> = Arc::from(Vec::new());
    for _ in 0..samples {
        // Pre-materialise the post-update instances; the timed region covers
        // session construction, preparation, index build, and evaluation.
        let mut dbu = db.clone();
        let dbs: Vec<DatabaseInstance> = (0..updates)
            .map(|u| {
                dbu.insert(update_fact(u)).expect("cold insert");
                dbu.clone()
            })
            .collect();
        let t0 = Instant::now();
        for dbu in dbs {
            let session = Session::with_instance(catalog(), dbu);
            cold_final_rows = session.execute(sql).expect("cold update query").rows;
        }
        cold_update_ms = cold_update_ms.min(t0.elapsed().as_secs_f64() * 1e3 / updates as f64);
    }
    agree = agree && warm_final_rows == cold_final_rows;

    ServingBench {
        groups: warm_rows.len(),
        facts: db.len(),
        samples,
        queries,
        cold_ms,
        warm_ms,
        speedup: cold_ms / warm_ms.max(f64::MIN_POSITIVE),
        updates,
        cold_update_ms,
        warm_update_ms,
        update_speedup: cold_update_ms / warm_update_ms.max(f64::MIN_POSITIVE),
        warm_partial_recomputes,
        large_facts: large_db.len(),
        write_ms,
        write_large_ms,
        write_cost_ratio: write_large_ms / write_ms.max(f64::MIN_POSITIVE),
        agree,
    }
}

/// Formats the E13 report for the harness.
pub fn format_serving(bench: &ServingBench) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E13 Serving session: warm statement/index/result caches vs per-call cold sessions"
    )
    .unwrap();
    writeln!(out, "  groups          : {}", bench.groups).unwrap();
    writeln!(out, "  facts           : {}", bench.facts).unwrap();
    writeln!(
        out,
        "  {} repeated queries   : cold {:.3} ms, warm {:.3} ms  ({:.2}x)",
        bench.queries, bench.cold_ms, bench.warm_ms, bench.speedup
    )
    .unwrap();
    writeln!(
        out,
        "  insert-then-query    : cold {:.3} ms, warm {:.3} ms  ({:.2}x, {} dirty-group patches)",
        bench.cold_update_ms,
        bench.warm_update_ms,
        bench.update_speedup,
        bench.warm_partial_recomputes
    )
    .unwrap();
    writeln!(
        out,
        "  per-write commit     : {:.4} ms at {} facts, {:.4} ms at {} facts  ({:.2}x)",
        bench.write_ms,
        bench.facts,
        bench.write_large_ms,
        bench.large_facts,
        bench.write_cost_ratio
    )
    .unwrap();
    writeln!(out, "  answers agree   : {}", bench.agree).unwrap();
    out
}

/// Result of the concurrent-serving benchmark (E14): one snapshot-isolated
/// [`rcqa_session::Session`] shared by 1/2/4 client threads on the warm
/// serving path, plus a readers-during-writer agreement check validated
/// against cold sessions at every pinned epoch.
#[derive(Clone, Debug)]
pub struct ConcurrentBench {
    /// Number of GROUP BY groups answered.
    pub groups: usize,
    /// Number of facts in the base instance.
    pub facts: usize,
    /// Number of timed samples per arm (best sample reported).
    pub samples: usize,
    /// Warm executes issued by **each** client thread per arm.
    pub queries_per_client: usize,
    /// The client thread counts measured (first entry is the baseline).
    pub clients: Vec<usize>,
    /// Best wall-clock time (milliseconds) per client count.
    pub ms: Vec<f64>,
    /// Aggregate throughput (warm executes per second) per client count.
    pub throughput_qps: Vec<f64>,
    /// Read-throughput scaling of 4 clients over 1 client.
    pub speedup_at_4: f64,
    /// Effective inserts the racing writer committed (per attempt).
    pub writer_rounds: usize,
    /// Reads that observed a **mid-commit** epoch (strictly between the base
    /// and the final write) — evidence the readers genuinely overlapped the
    /// writer, not just the arm's total read count.
    pub racing_reads: usize,
    /// Whether every read — warm, concurrent, and racing the writer — was
    /// byte-identical to a cold session over the instance at its pinned
    /// epoch.
    pub agree: bool,
    /// The machine's available parallelism while measuring. Scaling floors
    /// only make sense when this is at least the measured client count.
    pub available_parallelism: usize,
}

impl ConcurrentBench {
    /// Machine-readable JSON encoding (no external serialisation crates in
    /// this offline workspace, so the fields are written by hand).
    pub fn to_json(&self) -> String {
        let join = |xs: &[String]| xs.join(", ");
        format!(
            "{{\n  \"benchmark\": \"serving_concurrent_scaling\",\n  \"groups\": {},\n  \
             \"facts\": {},\n  \"samples\": {},\n  \"queries_per_client\": {},\n  \
             \"clients\": [{}],\n  \"ms\": [{}],\n  \"throughput_qps\": [{}],\n  \
             \"speedup_at_4\": {:.2},\n  \"writer_rounds\": {},\n  \"racing_reads\": {},\n  \
             \"agree\": {},\n  \"available_parallelism\": {}\n}}\n",
            self.groups,
            self.facts,
            self.samples,
            self.queries_per_client,
            join(
                &self
                    .clients
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
            ),
            join(
                &self
                    .ms
                    .iter()
                    .map(|m| format!("{m:.3}"))
                    .collect::<Vec<_>>()
            ),
            join(
                &self
                    .throughput_qps
                    .iter()
                    .map(|q| format!("{q:.0}"))
                    .collect::<Vec<_>>()
            ),
            self.speedup_at_4,
            self.writer_rounds,
            self.racing_reads,
            self.agree,
            self.available_parallelism
        )
    }
}

/// E14 — concurrent serving: `execute` holds no session-wide lock during
/// plan execution, so one warm session shared by N client threads should
/// scale its read throughput with the hardware. The throughput arms measure
/// the warm path (statement + result caches hot — the serving steady state);
/// the agreement arm races 4 readers against a writer committing inserts and
/// checks every read against a cold session over the instance at the read's
/// pinned epoch (snapshot isolation, not just eventual agreement).
pub fn bench_concurrent(
    r_blocks: usize,
    queries_per_client: usize,
    samples: usize,
) -> ConcurrentBench {
    use rcqa_core::engine::GroupRange;
    use rcqa_data::{Fact, Value};
    use rcqa_query::{Catalog, TableDef};
    use rcqa_session::Session;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    let cfg = JoinWorkload {
        r_blocks,
        y_domain: (r_blocks / 2).max(1),
        s_blocks_per_y: 2,
        inconsistency_ratio: 0.1,
        block_size: 2,
        max_value: 100,
        seed: 13,
    };
    let db = cfg.generate();
    let catalog = || {
        Catalog::new()
            .with_table(TableDef::new("R").key_column("X").column("Y"))
            .with_table(
                TableDef::new("S")
                    .key_column("Y")
                    .key_column("Z")
                    .numeric_column("Qty"),
            )
    };
    let sql = "SELECT R.X, MAX(S.Qty) FROM R, S WHERE R.Y = S.Y GROUP BY R.X";
    let samples = samples.max(1);
    let queries = queries_per_client.max(1);
    let cold_rows = |db: &DatabaseInstance| -> Arc<[GroupRange]> {
        Session::with_instance(catalog(), db.clone())
            .execute(sql)
            .expect("cold execute")
            .rows
    };

    // Warm-path throughput at 1/2/4 client threads: one shared session,
    // caches hot, every client hammering the same statement.
    let session = Session::with_instance(catalog(), db.clone());
    let baseline_rows = session.execute(sql).expect("warm-up").rows;
    let agree_flag = AtomicBool::new(true);
    let clients = vec![1usize, 2, 4];
    let mut ms = Vec::with_capacity(clients.len());
    let mut throughput_qps = Vec::with_capacity(clients.len());
    for &client_count in &clients {
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let t0 = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..client_count {
                    let session = &session;
                    let baseline_rows = &baseline_rows;
                    let agree_flag = &agree_flag;
                    scope.spawn(move || {
                        for _ in 0..queries {
                            let rows = session.execute(sql).expect("warm execute").rows;
                            if &rows != baseline_rows {
                                agree_flag.store(false, Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        ms.push(best);
        throughput_qps.push((client_count * queries) as f64 / (best / 1e3).max(f64::MIN_POSITIVE));
    }
    let speedup_at_4 = throughput_qps[clients.iter().position(|&t| t == 4).unwrap()]
        / throughput_qps[0].max(f64::MIN_POSITIVE);

    // Readers-during-writer agreement: every read must be byte-identical to
    // a cold session over the instance at the read's pinned epoch.
    // `racing_reads` counts only the reads that *observed a mid-commit
    // epoch* (strictly between the base and the final write) — evidence the
    // readers genuinely overlapped the writer; since the overlap window
    // depends on scheduling, the arm retries on a fresh session until at
    // least one such read occurs.
    let writer_rounds = 16usize;
    let writes: Vec<Fact> = (0..writer_rounds)
        .map(|u| Fact::new("R", [Value::text(format!("zc{u:03}")), Value::text("y0")]))
        .collect();
    let expected_by_epoch: Vec<Arc<[GroupRange]>> = {
        let mut staged = db.clone();
        let mut all = vec![cold_rows(&staged)];
        for f in &writes {
            staged.insert(f.clone()).expect("staged insert");
            all.push(cold_rows(&staged));
        }
        all
    };
    let mut agree = agree_flag.load(Ordering::Relaxed);
    let mut racing_reads = 0usize;
    for _attempt in 0..8 {
        let racing = Session::with_instance(catalog(), db.clone());
        racing.execute(sql).expect("racing warm-up");
        let observed: Mutex<Vec<(u64, Arc<[GroupRange]>)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let racing = &racing;
                let observed = &observed;
                scope.spawn(move || {
                    for _ in 0..queries {
                        let outcome = racing.execute(sql).expect("racing execute");
                        observed
                            .lock()
                            .expect("observed lock")
                            .push((outcome.epoch, outcome.rows));
                    }
                });
            }
            let racing = &racing;
            let writes = &writes;
            scope.spawn(move || {
                for f in writes {
                    racing.insert(f.clone()).expect("racing insert");
                    // Structurally-shared snapshots made commits so cheap
                    // that the whole write sequence can land inside one
                    // scheduler slice, leaving readers nothing to race.
                    // Yield after each commit so mid-commit epochs stay
                    // observable — this arm validates isolation, not write
                    // throughput.
                    std::thread::yield_now();
                }
            });
        });
        let observed = observed.into_inner().expect("observed lock");
        for (epoch, rows) in &observed {
            agree = agree && rows == &expected_by_epoch[*epoch as usize];
        }
        agree = agree
            && racing.execute(sql).expect("settled execute").rows
                == *expected_by_epoch.last().expect("at least the base epoch");
        racing_reads += observed
            .iter()
            .filter(|(e, _)| *e > 0 && (*e as usize) < writer_rounds)
            .count();
        if racing_reads > 0 {
            break;
        }
    }

    ConcurrentBench {
        groups: baseline_rows.len(),
        facts: db.len(),
        samples,
        queries_per_client: queries,
        clients,
        ms,
        throughput_qps,
        speedup_at_4,
        writer_rounds,
        racing_reads,
        agree,
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Formats the E14 report for the harness.
pub fn format_concurrent(bench: &ConcurrentBench) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E14 Concurrent serving: snapshot-isolated session shared by N client threads"
    )
    .unwrap();
    writeln!(out, "  groups          : {}", bench.groups).unwrap();
    writeln!(out, "  facts           : {}", bench.facts).unwrap();
    for (t, (ms, qps)) in bench
        .clients
        .iter()
        .zip(bench.ms.iter().zip(bench.throughput_qps.iter()))
    {
        writeln!(
            out,
            "  clients = {t:<3}   : {ms:.3} ms for {} reads  ({qps:.0} q/s)",
            t * bench.queries_per_client
        )
        .unwrap();
    }
    writeln!(out, "  scaling @4      : {:.2}x", bench.speedup_at_4).unwrap();
    writeln!(
        out,
        "  mid-commit reads: {} (epochs strictly inside the {}-write window)",
        bench.racing_reads, bench.writer_rounds
    )
    .unwrap();
    writeln!(out, "  answers agree   : {}", bench.agree).unwrap();
    writeln!(
        out,
        "  machine cores   : {} (scaling is only meaningful with ≥4)",
        bench.available_parallelism
    )
    .unwrap();
    out
}

/// Result of the durability benchmark (E15): per-commit overhead of the
/// write-ahead log under two fsync policies against the in-memory write
/// path, plus a timed crash recovery over a long log tail with a
/// byte-identical-answers check.
#[derive(Clone, Debug)]
pub struct DurabilityBench {
    /// Timed write commits per arm.
    pub commits: usize,
    /// Facts per commit (each commit is one `insert_all` batch).
    pub batch: usize,
    /// Number of timed samples per arm (best sample reported).
    pub samples: usize,
    /// Best per-commit latency (ms) of the in-memory session.
    pub mem_ms: f64,
    /// Best per-commit latency (ms) of a durable session under
    /// `SyncPolicy::EveryN(64)`.
    pub everyn_ms: f64,
    /// Best per-commit latency (ms) of a durable session under
    /// `SyncPolicy::Always` (one fsync per commit).
    pub always_ms: f64,
    /// `everyn_ms / mem_ms` — the amortized-fsync durability overhead.
    pub overhead_everyn: f64,
    /// `always_ms / mem_ms` — the fsync-per-commit durability overhead.
    pub overhead_always: f64,
    /// Events in the recovery arm's WAL tail (no checkpoint: recovery
    /// replays the whole log).
    pub recovery_events: usize,
    /// Wall-clock time (ms) for `Session::open` to recover that tail —
    /// parse + CRC-verify + replay through the live apply machinery.
    pub recovery_ms: f64,
    /// Whether the recovered session's answers are byte-identical to the
    /// pre-"crash" writer's and to cold in-memory sessions over the same
    /// instance at 1 and 4 executor threads.
    pub agree: bool,
}

impl DurabilityBench {
    /// Machine-readable JSON encoding (no external serialisation crates in
    /// this offline workspace, so the fields are written by hand).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"durability_wal\",\n  \"commits\": {},\n  \
             \"batch\": {},\n  \"samples\": {},\n  \"mem_ms\": {:.4},\n  \
             \"everyn_ms\": {:.4},\n  \"always_ms\": {:.4},\n  \
             \"overhead_everyn\": {:.3},\n  \"overhead_always\": {:.3},\n  \
             \"recovery_events\": {},\n  \"recovery_ms\": {:.3},\n  \
             \"agree\": {}\n}}\n",
            self.commits,
            self.batch,
            self.samples,
            self.mem_ms,
            self.everyn_ms,
            self.always_ms,
            self.overhead_everyn,
            self.overhead_always,
            self.recovery_events,
            self.recovery_ms,
            self.agree
        )
    }
}

/// E15 — durability: what the write-ahead log costs on the commit path, and
/// what recovery costs after a crash.
///
/// Three write arms commit the same sequence of `batch`-fact `insert_all`
/// batches: an in-memory session, a durable session fsyncing every 64
/// appends, and a durable session fsyncing every append. Durable arms write
/// to a fresh temp directory per sample (checkpointing disabled, so the arm
/// times pure append + fsync overhead). The recovery arm writes a
/// `recovery_events`-event WAL tail, drops the session, and times
/// `Session::open` replaying it; its answers must be byte-identical to the
/// writer's and to cold sessions at 1 and 4 executor threads.
pub fn bench_durability(
    commits: usize,
    batch: usize,
    recovery_events: usize,
    samples: usize,
) -> DurabilityBench {
    use rcqa_data::{Fact, Value};
    use rcqa_query::{Catalog, TableDef};
    use rcqa_session::{Session, SyncPolicy, WalOptions};

    let catalog = || {
        Catalog::new()
            .with_table(TableDef::new("R").key_column("X").column("Y"))
            .with_table(
                TableDef::new("S")
                    .key_column("Y")
                    .key_column("Z")
                    .numeric_column("Qty"),
            )
    };
    let sql = "SELECT R.X, MAX(S.Qty) FROM R, S WHERE R.Y = S.Y GROUP BY R.X";
    let commits = commits.max(1);
    let batch = batch.max(1);
    let samples = samples.max(1);
    // Seed facts every arm starts from: the `S` side of the join.
    let seed: Vec<Fact> = (0..30u64)
        .map(|i| {
            Fact::new(
                "S",
                [
                    Value::text(format!("y{}", i % 3)),
                    Value::text(format!("z{i}")),
                    Value::int(1 + (i as i64 % 7)),
                ],
            )
        })
        .collect();
    // Unique `R` facts per commit: every event is effective, so the logged
    // epochs advance by exactly `batch` per commit.
    let commit_batch = |c: usize| -> Vec<Fact> {
        (0..batch)
            .map(|i| {
                Fact::new(
                    "R",
                    [
                        Value::text(format!("x{c:05}_{i:03}")),
                        Value::text(format!("y{}", (c + i) % 3)),
                    ],
                )
            })
            .collect()
    };

    // Times `commits` batch commits on `session`, returning per-commit ms.
    let run_commits = |session: &Session| -> f64 {
        session.insert_all(seed.iter().cloned()).expect("seed");
        session.execute(sql).expect("warm-up");
        let t0 = Instant::now();
        for c in 0..commits {
            session.insert_all(commit_batch(c)).expect("commit");
        }
        t0.elapsed().as_secs_f64() * 1e3 / commits as f64
    };

    let mut mem_ms = f64::INFINITY;
    for _ in 0..samples {
        let session = Session::new(catalog());
        mem_ms = mem_ms.min(run_commits(&session));
    }

    let durable_arm = |sync: SyncPolicy| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let dir = tempfile::TempDir::new().expect("tempdir");
            let options = WalOptions {
                sync,
                checkpoint_every: 0,
                ..WalOptions::default()
            };
            let session = Session::open_with(catalog(), dir.path(), options).expect("open");
            best = best.min(run_commits(&session));
        }
        best
    };
    let everyn_ms = durable_arm(SyncPolicy::EveryN(64));
    let always_ms = durable_arm(SyncPolicy::Always);

    // Recovery: a long WAL tail with no checkpoint, replayed by open().
    let recovery_commits = recovery_events.div_ceil(batch).max(1);
    let dir = tempfile::TempDir::new().expect("tempdir");
    let options = WalOptions {
        sync: SyncPolicy::EveryN(64),
        checkpoint_every: 0,
        ..WalOptions::default()
    };
    let (writer_rows, writer_epoch) = {
        let session = Session::open_with(catalog(), dir.path(), options).expect("open");
        session.insert_all(seed.iter().cloned()).expect("seed");
        for c in 0..recovery_commits {
            session.insert_all(commit_batch(c)).expect("commit");
        }
        session.sync().expect("final sync");
        (
            session.execute(sql).expect("writer execute").rows,
            session.epoch(),
        )
    };
    let t0 = Instant::now();
    let recovered = Session::open_with(catalog(), dir.path(), options).expect("recover");
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut agree = recovered.epoch() == writer_epoch
        && recovered.execute(sql).expect("recovered execute").rows == writer_rows;
    for threads in [1usize, 4] {
        let cold = Session::with_instance(catalog(), recovered.database()).with_options(
            rcqa_core::engine::EngineOptions {
                threads,
                ..Default::default()
            },
        );
        agree = agree && cold.execute(sql).expect("cold execute").rows == writer_rows;
    }

    DurabilityBench {
        commits,
        batch,
        samples,
        mem_ms,
        everyn_ms,
        always_ms,
        overhead_everyn: everyn_ms / mem_ms.max(f64::MIN_POSITIVE),
        overhead_always: always_ms / mem_ms.max(f64::MIN_POSITIVE),
        recovery_events: recovery_commits * batch,
        recovery_ms,
        agree,
    }
}

/// Allocation accounting for the scale benchmark (E16): a counting wrapper
/// around the system allocator. Peak live heap bytes are a portable proxy
/// for peak RSS — the workspace has no external crates, so there is no
/// platform RSS probe to lean on, and the quantity E16 compares (retained
/// size of two data layouts plus their join working set) is heap anyway.
pub mod alloc_stats {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static LIVE: AtomicUsize = AtomicUsize::new(0);
    static PEAK: AtomicUsize = AtomicUsize::new(0);

    /// A [`GlobalAlloc`] that forwards to [`System`] and tracks live and
    /// peak heap bytes in two relaxed atomics. The accounting is racy across
    /// threads by design (relaxed loads; realloc counts the new size before
    /// the old one is forgotten) — E16 measures single-threaded arms, and a
    /// few bytes of slack are irrelevant at the 10⁵-fact scale.
    pub struct CountingAllocator;

    fn on_alloc(size: usize) {
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    // SAFETY: every method forwards verbatim to `System`; the accounting
    // never observes or alters the returned pointers.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let ptr = unsafe { System.alloc(layout) };
            if !ptr.is_null() {
                on_alloc(layout.size());
            }
            ptr
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let ptr = unsafe { System.alloc_zeroed(layout) };
            if !ptr.is_null() {
                on_alloc(layout.size());
            }
            ptr
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
            if !new_ptr.is_null() {
                on_alloc(new_size);
                LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            }
            new_ptr
        }
    }

    /// Resets the peak to the current live size and returns that baseline;
    /// `peak_bytes() - baseline` is then the incremental peak of a region.
    pub fn reset_peak() -> usize {
        let live = LIVE.load(Ordering::Relaxed);
        PEAK.store(live, Ordering::Relaxed);
        live
    }

    /// Peak live heap bytes since the last [`reset_peak`].
    pub fn peak_bytes() -> usize {
        PEAK.load(Ordering::Relaxed)
    }
}

/// Installed for every `rcqa-bench` binary and test, so E16 can report a
/// peak-heap proxy without platform-specific RSS probes.
#[global_allocator]
static GLOBAL_ALLOCATOR: alloc_stats::CountingAllocator = alloc_stats::CountingAllocator;

/// Result of the data-layout scale benchmark (E16): the same grouped
/// COUNT/SUM join executed over the interned columnar index vs a mirror of
/// the pre-interning row layout, on a Zipf-skewed 10⁵–10⁶-fact instance.
#[derive(Clone, Debug)]
pub struct ScaleBench {
    /// Number of facts in the instance.
    pub facts: usize,
    /// Number of join groups (distinct `x` keys with at least one match).
    pub groups: usize,
    /// Number of timed samples per arm (best sample reported).
    pub samples: usize,
    /// Best wall-clock time (ms) of the join over the row layout.
    pub row_ms: f64,
    /// Best wall-clock time (ms) of the join over the interned columns.
    pub columnar_ms: f64,
    /// `row_ms / columnar_ms` — the layout speedup.
    pub speedup: f64,
    /// Incremental peak heap bytes of the row arm (layout build + one join).
    pub row_peak_bytes: usize,
    /// Incremental peak heap bytes of the columnar arm (index build + one
    /// join, including the dense id→numeric table).
    pub columnar_peak_bytes: usize,
    /// `row_peak_bytes / columnar_peak_bytes`.
    pub mem_ratio: f64,
    /// Whether both layouts produced identical per-group (COUNT, SUM) maps.
    pub agree: bool,
    /// The machine's available parallelism while measuring.
    pub available_parallelism: usize,
}

impl ScaleBench {
    /// Machine-readable JSON encoding (no external serialisation crates in
    /// this offline workspace, so the fields are written by hand).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"scale_interned_columnar_vs_row\",\n  \"facts\": {},\n  \
             \"groups\": {},\n  \"samples\": {},\n  \"row_ms\": {:.3},\n  \
             \"columnar_ms\": {:.3},\n  \"speedup\": {:.2},\n  \"row_peak_bytes\": {},\n  \
             \"columnar_peak_bytes\": {},\n  \"mem_ratio\": {:.2},\n  \"agree\": {},\n  \
             \"available_parallelism\": {}\n}}\n",
            self.facts,
            self.groups,
            self.samples,
            self.row_ms,
            self.columnar_ms,
            self.speedup,
            self.row_peak_bytes,
            self.columnar_peak_bytes,
            self.mem_ratio,
            self.agree,
            self.available_parallelism
        )
    }
}

/// A block of the pre-interning row layout: the key and the facts as owned
/// `Vec<Value>` rows, exactly how `IndexedBlock` stored them before the
/// columnar refactor.
struct RowBlock {
    key: Vec<Value>,
    rows: Vec<Vec<Value>>,
}

/// Rebuilds the pre-interning layout of one relation: blocks in key order,
/// rows as `Vec<Value>` (the instance iterates facts sorted, so a run scan
/// groups blocks and leaves the list key-sorted).
fn row_layout(db: &DatabaseInstance, relation: &str) -> Vec<RowBlock> {
    let key_len = db
        .schema()
        .signature(relation)
        .expect("relation in schema")
        .key_len();
    let mut blocks: Vec<RowBlock> = Vec::new();
    for f in db.facts().filter(|f| f.relation() == relation) {
        match blocks.last_mut() {
            Some(b) if b.key == f.args()[..key_len] => b.rows.push(f.args().to_vec()),
            _ => blocks.push(RowBlock {
                key: f.args()[..key_len].to_vec(),
                rows: vec![f.args().to_vec()],
            }),
        }
    }
    blocks
}

/// E16 — data-layout scaling: the same grouped `(COUNT, SUM)` join of
/// `R(x, y) ⋈ S(y, z, r)` executed twice on a Zipf-skewed instance sized in
/// the 10⁵–10⁶-fact range. Both arms run the identical algorithm — for every
/// `R` fact, binary-search the contiguous `S`-block span behind its `y`,
/// scan the span, accumulate per-`x` — so the measured gap is the layout:
/// the row arm compares and hashes `String`-backed [`Value`]s and walks
/// per-fact `Vec<Value>` rows; the columnar arm compares raw `u32` ids and
/// scans one dense column slice, materialising `Value`s only when the final
/// group map is built. Peak heap (allocation-counter proxy for RSS) is
/// recorded around each arm's layout build plus one join pass.
pub fn bench_scale(target_facts: usize, samples: usize) -> ScaleBench {
    use rcqa_core::index::DbIndex;
    use rcqa_data::Rational;
    use rcqa_gen::ScaleWorkload;
    use std::collections::{BTreeMap, HashMap};

    let cfg = ScaleWorkload {
        target_facts,
        ..Default::default()
    };
    let db = cfg.generate();
    let samples = samples.max(1);

    // Row arm: the pre-interning layout. Peak covers build + one join.
    let baseline = alloc_stats::reset_peak();
    let r_rows = row_layout(&db, "R");
    let s_rows = row_layout(&db, "S");
    let row_join = || -> HashMap<Value, (u64, Rational)> {
        let mut acc: HashMap<Value, (u64, Rational)> = HashMap::new();
        for rb in &r_rows {
            for row in &rb.rows {
                let y = &row[1];
                let lo = s_rows.partition_point(|b| b.key[0] < *y);
                let hi = lo + s_rows[lo..].partition_point(|b| b.key[0] == *y);
                if lo == hi {
                    continue;
                }
                let entry = acc.entry(row[0].clone()).or_insert((0, Rational::ZERO));
                for sb in &s_rows[lo..hi] {
                    for srow in &sb.rows {
                        entry.0 += 1;
                        entry.1 += srow[2].as_num().expect("numeric r column");
                    }
                }
            }
        }
        acc
    };
    let row_result: BTreeMap<Value, (u64, Rational)> = row_join().into_iter().collect();
    let row_peak_bytes = alloc_stats::peak_bytes().saturating_sub(baseline);
    let mut row_ms = f64::INFINITY;
    for _ in 0..samples {
        let t0 = Instant::now();
        let acc = row_join();
        row_ms = row_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert!(!acc.is_empty(), "join produced groups");
    }
    drop(r_rows);
    drop(s_rows);

    // Columnar arm: the interned index. Peak covers index build, the dense
    // id→numeric table, and one join.
    let baseline = alloc_stats::reset_peak();
    let idx = DbIndex::new(&db);
    let interner = idx.interner();
    let r_rel = idx.relation("R");
    let s_rel = idx.relation("S");
    // Materialise each distinct numeric id once (the result-boundary rule):
    // the join then reads a dense table instead of decoding per fact.
    let nums: Vec<Rational> = (0..interner.len() as u32)
        .map(|id| interner.value(id).as_num().unwrap_or(Rational::ZERO))
        .collect();
    let columnar_join = || -> HashMap<u32, (u64, Rational)> {
        let mut acc: HashMap<u32, (u64, Rational)> = HashMap::new();
        for block in r_rel.blocks() {
            for row in 0..block.cols.rows() {
                let x = block.cols.id_at(row, 0);
                let y = block.cols.id_at(row, 1);
                let pattern = [Some(y), None];
                let mut span = s_rel.blocks_matching(&pattern, interner).peekable();
                if span.peek().is_none() {
                    continue;
                }
                let entry = acc.entry(x).or_insert((0, Rational::ZERO));
                for sb in span {
                    for &rid in sb.cols.col(2) {
                        entry.0 += 1;
                        entry.1 += nums[rid as usize];
                    }
                }
            }
        }
        acc
    };
    let columnar_result: BTreeMap<Value, (u64, Rational)> = columnar_join()
        .into_iter()
        .map(|(id, agg)| (interner.value(id).clone(), agg))
        .collect();
    let columnar_peak_bytes = alloc_stats::peak_bytes().saturating_sub(baseline);
    let mut columnar_ms = f64::INFINITY;
    for _ in 0..samples {
        let t0 = Instant::now();
        let acc = columnar_join();
        columnar_ms = columnar_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert!(!acc.is_empty(), "join produced groups");
    }

    ScaleBench {
        facts: db.len(),
        groups: row_result.len(),
        samples,
        row_ms,
        columnar_ms,
        speedup: row_ms / columnar_ms.max(f64::MIN_POSITIVE),
        row_peak_bytes,
        columnar_peak_bytes,
        mem_ratio: row_peak_bytes as f64 / (columnar_peak_bytes as f64).max(f64::MIN_POSITIVE),
        agree: row_result == columnar_result,
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Formats the E16 report for the harness.
pub fn format_scale(bench: &ScaleBench) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E16 Scale: interned columnar layout vs pre-interning row layout (grouped join)"
    )
    .unwrap();
    writeln!(out, "  facts           : {}", bench.facts).unwrap();
    writeln!(out, "  groups          : {}", bench.groups).unwrap();
    writeln!(
        out,
        "  row layout      : {:.3} ms, peak {:.1} MiB",
        bench.row_ms,
        bench.row_peak_bytes as f64 / (1 << 20) as f64
    )
    .unwrap();
    writeln!(
        out,
        "  interned columns: {:.3} ms, peak {:.1} MiB",
        bench.columnar_ms,
        bench.columnar_peak_bytes as f64 / (1 << 20) as f64
    )
    .unwrap();
    writeln!(
        out,
        "  speedup         : {:.2}x   (memory ratio {:.2}x)",
        bench.speedup, bench.mem_ratio
    )
    .unwrap();
    writeln!(out, "  answers agree   : {}", bench.agree).unwrap();
    out
}

/// Result of the range-seek planner benchmark (E17): the same grouped MAX
/// query with a selective range predicate on the group key, answered once by
/// the cost-based seek plan and once with the planner forced onto the
/// full-scan baseline (`EngineOptions::force_scan`), over one shared index
/// of a Zipf-skewed [`rcqa_gen::ScaleWorkload`] instance.
#[derive(Clone, Debug)]
pub struct RangeBench {
    /// Number of facts in the instance.
    pub facts: usize,
    /// Total groups of the unrestricted query (what the scan arm evaluates).
    pub groups: usize,
    /// Groups surviving the range predicate (what both arms answer).
    pub matched_groups: usize,
    /// Number of timed samples per arm (best sample reported).
    pub samples: usize,
    /// Best wall-clock time (ms) of the forced full-scan arm.
    pub scan_ms: f64,
    /// Best wall-clock time (ms) of the cost-based seek arm.
    pub seek_ms: f64,
    /// `scan_ms / seek_ms` — the access-path speedup.
    pub speedup: f64,
    /// Whether the seek arm's plan actually chose a `Seek` leaf (from
    /// `explain`); false would mean the planner mis-costed the predicate.
    pub seek_path_used: bool,
    /// Whether both arms returned byte-identical rows.
    pub agree: bool,
    /// The machine's available parallelism while measuring.
    pub available_parallelism: usize,
}

impl RangeBench {
    /// Machine-readable JSON encoding (no external serialisation crates in
    /// this offline workspace, so the fields are written by hand).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"range_seek_vs_full_scan\",\n  \"facts\": {},\n  \
             \"groups\": {},\n  \"matched_groups\": {},\n  \"samples\": {},\n  \
             \"scan_ms\": {:.3},\n  \"seek_ms\": {:.3},\n  \"speedup\": {:.2},\n  \
             \"seek_path_used\": {},\n  \"agree\": {},\n  \
             \"available_parallelism\": {}\n}}\n",
            self.facts,
            self.groups,
            self.matched_groups,
            self.samples,
            self.scan_ms,
            self.seek_ms,
            self.speedup,
            self.seek_path_used,
            self.agree,
            self.available_parallelism
        )
    }
}

/// E17 — cost-based range seek vs forced full scan: the grouped MAX query of
/// [`rcqa_gen::ScaleWorkload::range_query`] (`x >= 'x9'`, a contiguous
/// restriction matching a few percent of the `R` blocks) evaluated through
/// the full engine twice over one pre-built index. The seek arm lets the
/// planner slice the sorted block list by binary search and evaluate only
/// the matching groups; the forced-scan arm (`EngineOptions::force_scan`)
/// evaluates every group and filters the rows afterwards — the seed
/// behaviour before the range-seek planner. Both arms must return
/// byte-identical rows; the gap is the work the seek avoided.
pub fn bench_range(target_facts: usize, samples: usize) -> RangeBench {
    use rcqa_core::engine::EngineOptions;
    use rcqa_core::index::DbIndex;
    use rcqa_gen::ScaleWorkload;

    let cfg = ScaleWorkload {
        target_facts,
        ..Default::default()
    };
    let db = cfg.generate();
    let (query, predicate) = cfg.range_query();
    let samples = samples.max(1);
    let index = DbIndex::new(&db);

    let engine = |force_scan: bool| {
        RangeCqa::new(&query, &cfg.schema())
            .expect("workload query prepares")
            .with_predicates(vec![predicate.clone()])
            .expect("predicate variable occurs in the body")
            .with_options(EngineOptions {
                force_scan,
                ..EngineOptions::default()
            })
    };
    // Total group count of the unrestricted query, for scale reporting.
    let groups = RangeCqa::new(&query, &cfg.schema())
        .expect("workload query prepares")
        .range_with_index(&db, &index)
        .expect("unrestricted evaluation succeeds")
        .len();

    let run = |force_scan: bool| -> (Vec<GroupRange>, f64) {
        let engine = engine(force_scan);
        let rows = engine
            .range_with_index(&db, &index)
            .expect("restricted evaluation succeeds");
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let t0 = Instant::now();
            let again = engine
                .range_with_index(&db, &index)
                .expect("restricted evaluation succeeds");
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(again.len(), rows.len(), "evaluation must be stable");
        }
        (rows, best)
    };
    let (scan_rows, scan_ms) = run(true);
    let (seek_rows, seek_ms) = run(false);
    let seek_path_used = engine(false)
        .explain_with_index(&db, &index)
        .contains("Seek");

    RangeBench {
        facts: db.len(),
        groups,
        matched_groups: seek_rows.len(),
        samples,
        scan_ms,
        seek_ms,
        speedup: scan_ms / seek_ms.max(f64::MIN_POSITIVE),
        seek_path_used,
        agree: scan_rows == seek_rows,
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Formats the E17 report for the harness.
pub fn format_range(bench: &RangeBench) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E17 Range seek: cost-based seek vs forced full scan (grouped MAX, x >= 'x9')"
    )
    .unwrap();
    writeln!(out, "  facts          : {}", bench.facts).unwrap();
    writeln!(
        out,
        "  groups         : {} total, {} matching the predicate",
        bench.groups, bench.matched_groups
    )
    .unwrap();
    writeln!(out, "  full scan      : {:.3} ms", bench.scan_ms).unwrap();
    writeln!(out, "  range seek     : {:.3} ms", bench.seek_ms).unwrap();
    writeln!(out, "  speedup        : {:.2}x", bench.speedup).unwrap();
    writeln!(out, "  seek path used : {}", bench.seek_path_used).unwrap();
    writeln!(out, "  answers agree  : {}", bench.agree).unwrap();
    out
}

/// Formats the E15 report for the harness.
pub fn format_durability(bench: &DurabilityBench) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E15 Durability: WAL append/fsync overhead and crash-recovery time"
    )
    .unwrap();
    writeln!(
        out,
        "  {} commits x {} facts : in-memory {:.4} ms/commit",
        bench.commits, bench.batch, bench.mem_ms
    )
    .unwrap();
    writeln!(
        out,
        "  fsync every 64       : {:.4} ms/commit  ({:.2}x in-memory)",
        bench.everyn_ms, bench.overhead_everyn
    )
    .unwrap();
    writeln!(
        out,
        "  fsync every commit   : {:.4} ms/commit  ({:.2}x in-memory)",
        bench.always_ms, bench.overhead_always
    )
    .unwrap();
    writeln!(
        out,
        "  recovery             : {} events replayed in {:.3} ms",
        bench.recovery_events, bench.recovery_ms
    )
    .unwrap();
    writeln!(out, "  answers agree   : {}", bench.agree).unwrap();
    out
}

/// One instance size of the incremental-maintenance benchmark (E18).
#[derive(Clone, Debug)]
pub struct IncrementalSize {
    /// GROUP BY groups in the answer before the update sequence.
    pub groups: usize,
    /// Facts in the instance.
    pub facts: usize,
    /// Best per-round insert-then-read latency (ms) on the support-patched
    /// warm session.
    pub patched_ms: f64,
    /// Best per-round insert-then-read latency (ms) with patching disabled
    /// (`dirty_log_cap = 0`), i.e. the pre-refactor full-recompute behaviour
    /// for this statement.
    pub full_ms: f64,
    /// `full_ms / patched_ms` at this size.
    pub speedup: f64,
    /// Stale results served by the supported-patch path in the patched arm.
    pub supported_patches: u64,
    /// Stale results that fell back to full recompute in the patched arm
    /// (must stay 0 here — every write localises to one group).
    pub patched_support_misses: u64,
    /// Stale results that fell back to full recompute in the disabled arm
    /// (one per write — the honest-miss counter at work).
    pub full_support_misses: u64,
    /// Top-k selections recomputed in the patched arm (0: no ORDER BY).
    pub topk_fallbacks: u64,
}

/// Result of the incremental-maintenance benchmark (E18): per-write warm-read
/// latency of the support-tracked patch path vs forced full recompute on a
/// statement the old `group_locality` certificate rejected (GROUP BY over a
/// non-key column, plus HAVING), across growing group counts. Each write
/// dirties exactly one `S` block, so the patched cost should track
/// |affected groups| = 1 while the full-recompute cost tracks |all groups|.
#[derive(Clone, Debug)]
pub struct IncrementalBench {
    /// Insert-then-read rounds per timed arm.
    pub updates: usize,
    /// Number of timed samples per arm (best sample reported).
    pub samples: usize,
    /// Per-size measurements, smallest to largest group count.
    pub sizes: Vec<IncrementalSize>,
    /// Patched-arm latency at the largest size over the smallest — flat
    /// (near 1) when cost scales with |affected groups|.
    pub patched_scaling: f64,
    /// Full-recompute latency at the largest size over the smallest — grows
    /// with |all groups|.
    pub full_scaling: f64,
    /// `full_ms / patched_ms` at the largest size (the CI-gated figure).
    pub speedup: f64,
    /// Whether every arm agreed with cold sessions at 1 and 4 threads after
    /// the full update sequence (rows, extra aggregates, and HAVING
    /// statuses).
    pub agree: bool,
    /// `std::thread::available_parallelism()` — CI gates the speedup floor
    /// only on >= 2 cores.
    pub available_parallelism: usize,
}

impl IncrementalBench {
    /// Machine-readable JSON encoding (hand-written; no serialisation crates
    /// in this offline workspace).
    pub fn to_json(&self) -> String {
        let sizes = self
            .sizes
            .iter()
            .map(|s| {
                format!(
                    "    {{ \"groups\": {}, \"facts\": {}, \"patched_ms\": {:.4}, \
                     \"full_ms\": {:.4}, \"speedup\": {:.2}, \"supported_patches\": {}, \
                     \"patched_support_misses\": {}, \"full_support_misses\": {}, \
                     \"topk_fallbacks\": {} }}",
                    s.groups,
                    s.facts,
                    s.patched_ms,
                    s.full_ms,
                    s.speedup,
                    s.supported_patches,
                    s.patched_support_misses,
                    s.full_support_misses,
                    s.topk_fallbacks
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"benchmark\": \"incremental_support_patching\",\n  \"updates\": {},\n  \
             \"samples\": {},\n  \"sizes\": [\n{}\n  ],\n  \"patched_scaling\": {:.2},\n  \
             \"full_scaling\": {:.2},\n  \"speedup\": {:.2},\n  \"agree\": {},\n  \
             \"available_parallelism\": {}\n}}\n",
            self.updates,
            self.samples,
            sizes,
            self.patched_scaling,
            self.full_scaling,
            self.speedup,
            self.agree,
            self.available_parallelism
        )
    }
}

/// E18 — support-tracked differential maintenance. The statement groups by
/// `R.Y` (not a key column of `R`, so the old locality certificate refused to
/// patch it and every dirty block forced a full recompute) and carries a
/// HAVING clause re-decided from the patched rows. Each round inserts one
/// fresh `S` fact into the `y0` join key — exactly one dirty block, whose
/// support pattern `[Group(0), Any]` localises to the single `y0` group —
/// then reads the statement warm. The baseline arm runs the identical session
/// machinery with `dirty_log_cap = 0`, which disables patching and reproduces
/// the pre-refactor full-recompute path. MAX is rewriting-backed on both
/// bounds, so no arm falls off the one-pass pipeline.
pub fn bench_incremental(y_domains: &[usize], updates: usize, samples: usize) -> IncrementalBench {
    use rcqa_data::Fact;
    use rcqa_query::{Catalog, TableDef};
    use rcqa_session::{Session, SessionOptions};

    let catalog = || {
        Catalog::new()
            .with_table(TableDef::new("R").key_column("X").column("Y"))
            .with_table(
                TableDef::new("S")
                    .key_column("Y")
                    .key_column("Z")
                    .numeric_column("Qty"),
            )
    };
    let sql = "SELECT R.Y, MAX(S.Qty) FROM R, S WHERE R.Y = S.Y GROUP BY R.Y \
               HAVING MAX(S.Qty) > 50";
    let update_fact = |u: usize| {
        Fact::new(
            "S",
            [
                Value::text("y0"),
                Value::text(format!("zu{u:03}")),
                Value::int(40 + (u % 20) as i64),
            ],
        )
    };
    let updates = updates.max(1);
    let samples = samples.max(1);
    let mut agree = true;
    let mut sizes = Vec::new();
    for &y_domain in y_domains {
        let db = JoinWorkload {
            r_blocks: y_domain * 2,
            y_domain,
            s_blocks_per_y: 2,
            inconsistency_ratio: 0.1,
            block_size: 2,
            max_value: 100,
            seed: 19,
        }
        .generate();

        // The timed region covers one serving round trip: commit one fact,
        // then read the statement warm. Patching on (default options) vs off
        // (cap 0 ages every cached result past the dirty log immediately).
        let mut run = |options: SessionOptions| -> (f64, rcqa_session::SessionStats) {
            let mut best = f64::INFINITY;
            let mut stats = rcqa_session::SessionStats::default();
            for _ in 0..samples {
                let session =
                    Session::with_instance(catalog(), db.clone()).with_session_options(options);
                session.execute(sql).expect("warm-up");
                let before = session.stats();
                // Per-write warm-READ latency: the commit happens off the
                // clock (both arms pay the identical delta-replay cost); the
                // timed region is exactly the stale-result refresh the
                // support layer is responsible for.
                let mut elapsed = 0.0;
                for u in 0..updates {
                    session.insert(update_fact(u)).expect("insert");
                    let t0 = Instant::now();
                    session.execute(sql).expect("warm read");
                    elapsed += t0.elapsed().as_secs_f64();
                }
                best = best.min(elapsed * 1e3 / updates as f64);
                let after = session.stats();
                stats = rcqa_session::SessionStats {
                    supported_patches: after.supported_patches - before.supported_patches,
                    support_misses: after.support_misses - before.support_misses,
                    topk_fallbacks: after.topk_fallbacks - before.topk_fallbacks,
                    ..after
                };
                // Every arm must agree with cold sessions at 1 and 4 threads
                // over the final instance.
                let warm = session.execute(sql).expect("final warm read");
                for threads in [1usize, 4] {
                    let cold = Session::with_instance(catalog(), session.database().clone())
                        .with_options(rcqa_core::engine::EngineOptions {
                            threads,
                            ..Default::default()
                        });
                    let cold = cold.execute(sql).expect("cold read");
                    agree = agree
                        && cold.rows == warm.rows
                        && cold.more_aggregates == warm.more_aggregates
                        && cold.having == warm.having;
                }
            }
            (best, stats)
        };
        let (patched_ms, patched_stats) = run(SessionOptions::default());
        let (full_ms, full_stats) = run(SessionOptions {
            dirty_log_cap: 0,
            ..Default::default()
        });
        sizes.push(IncrementalSize {
            groups: y_domain,
            facts: db.len(),
            patched_ms,
            full_ms,
            speedup: full_ms / patched_ms.max(f64::MIN_POSITIVE),
            supported_patches: patched_stats.supported_patches,
            patched_support_misses: patched_stats.support_misses,
            full_support_misses: full_stats.support_misses,
            topk_fallbacks: patched_stats.topk_fallbacks,
        });
    }
    let (first, last) = (&sizes[0], &sizes[sizes.len() - 1]);
    IncrementalBench {
        updates,
        samples,
        patched_scaling: last.patched_ms / first.patched_ms.max(f64::MIN_POSITIVE),
        full_scaling: last.full_ms / first.full_ms.max(f64::MIN_POSITIVE),
        speedup: last.speedup,
        agree,
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        sizes,
    }
}

/// Formats the E18 report for the harness, surfacing the per-path
/// [`rcqa_session::SessionStats`] counters next to the latencies they
/// explain.
pub fn format_incremental(bench: &IncrementalBench) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E18 Incremental maintenance: support-tracked patching vs full recompute \
         (GROUP BY R.Y + HAVING, one dirty S block per write)"
    )
    .unwrap();
    for s in &bench.sizes {
        writeln!(
            out,
            "  {:>5} groups ({:>6} facts) : patched {:.4} ms, full {:.4} ms  ({:.2}x)  \
             [patches={}, misses={}/{}, topk_fallbacks={}]",
            s.groups,
            s.facts,
            s.patched_ms,
            s.full_ms,
            s.speedup,
            s.supported_patches,
            s.patched_support_misses,
            s.full_support_misses,
            s.topk_fallbacks
        )
        .unwrap();
    }
    writeln!(
        out,
        "  patched scaling : {:.2}x across {:.0}x more groups (tracks |affected groups|)",
        bench.patched_scaling,
        bench.sizes[bench.sizes.len() - 1].groups as f64 / bench.sizes[0].groups as f64
    )
    .unwrap();
    writeln!(
        out,
        "  full scaling    : {:.2}x (tracks |all groups|)",
        bench.full_scaling
    )
    .unwrap();
    writeln!(out, "  speedup (largest size) : {:.2}x", bench.speedup).unwrap();
    writeln!(out, "  answers agree   : {}", bench.agree).unwrap();
    writeln!(
        out,
        "  machine cores   : {} (CI gates the floor only with >= 2)",
        bench.available_parallelism
    )
    .unwrap();
    out
}

/// Result of the sharded-serving benchmark (E19): a [`rcqa_session::ShardedSession`]
/// front-end at 1/2/4 shards on a write-then-warm-read serving loop, plus
/// group-commit write throughput against serial single-shard commits.
#[derive(Clone, Debug)]
pub struct ShardBench {
    /// Level-0 blocks in the seeded instance.
    pub blocks: usize,
    /// Facts in the seeded instance.
    pub facts: usize,
    /// Write-then-warm-read rounds per timed read arm.
    pub rounds: usize,
    /// Number of timed samples per arm (best sample reported).
    pub samples: usize,
    /// The shard counts measured (first entry is the unsharded baseline).
    pub shard_counts: Vec<usize>,
    /// Best per-round warm-read latency (milliseconds) per shard count.
    pub read_ms: Vec<f64>,
    /// Read speedup of 4 shards over 1 shard (`read_ms[1] / read_ms[4]`).
    /// The win is work confinement, not thread parallelism: a write dirties
    /// one shard, the other shards answer from their per-snapshot result
    /// caches, so only 1/N of the instance is recomputed per round.
    pub read_scaling_at_4: f64,
    /// Concurrent writer threads in the group-commit arm.
    pub writers: usize,
    /// Total committed write operations per write arm.
    pub write_ops: usize,
    /// Durable commits/second through the 4-shard group-commit coordinator.
    pub group_commit_ops_per_s: f64,
    /// Durable commits/second through one serial per-op session.
    pub serial_ops_per_s: f64,
    /// `group_commit_ops_per_s / serial_ops_per_s`.
    pub write_speedup: f64,
    /// Fan-out queries answered by the 4-shard read arm.
    pub fanout_queries: u64,
    /// Designated-shard queries answered by the 4-shard read arm.
    pub designated_queries: u64,
    /// Cross-shard combine queries answered by the 4-shard read arm.
    pub combine_queries: u64,
    /// Per-shard result-cache hits summed over the 4-shard read arm.
    pub result_hits: u64,
    /// Honest support misses (full recomputes) over the 4-shard read arm.
    pub support_misses: u64,
    /// Multi-event group commits coalesced in the write arm.
    pub group_commits: u64,
    /// Events carried by those multi-event group commits.
    pub group_commit_events: u64,
    /// Per-shard epoch frontier of the 4-shard read arm after all rounds.
    pub epoch_frontier: Vec<u64>,
    /// Whether every arm (all shard counts, read and write) answered every
    /// statement shape byte-identically to an unsharded session.
    pub agree: bool,
    /// The machine's available parallelism while measuring. The read
    /// scaling holds even on one core (it is work reduction); the write
    /// arm's group commit needs real concurrency to coalesce.
    pub available_parallelism: usize,
}

impl ShardBench {
    /// Machine-readable JSON encoding (hand-written; no serialisation
    /// crates in this offline workspace).
    pub fn to_json(&self) -> String {
        let join = |xs: &[String]| xs.join(", ");
        format!(
            "{{\n  \"benchmark\": \"sharded_serving\",\n  \"blocks\": {},\n  \
             \"facts\": {},\n  \"rounds\": {},\n  \"samples\": {},\n  \
             \"shard_counts\": [{}],\n  \"read_ms\": [{}],\n  \
             \"read_scaling_at_4\": {:.2},\n  \"writers\": {},\n  \
             \"write_ops\": {},\n  \"group_commit_ops_per_s\": {:.0},\n  \
             \"serial_ops_per_s\": {:.0},\n  \"write_speedup\": {:.2},\n  \
             \"fanout_queries\": {},\n  \"designated_queries\": {},\n  \
             \"combine_queries\": {},\n  \"result_hits\": {},\n  \
             \"support_misses\": {},\n  \"group_commits\": {},\n  \
             \"group_commit_events\": {},\n  \"epoch_frontier\": [{}],\n  \
             \"agree\": {},\n  \"available_parallelism\": {}\n}}\n",
            self.blocks,
            self.facts,
            self.rounds,
            self.samples,
            join(
                &self
                    .shard_counts
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
            ),
            join(
                &self
                    .read_ms
                    .iter()
                    .map(|m| format!("{m:.4}"))
                    .collect::<Vec<_>>()
            ),
            self.read_scaling_at_4,
            self.writers,
            self.write_ops,
            self.group_commit_ops_per_s,
            self.serial_ops_per_s,
            self.write_speedup,
            self.fanout_queries,
            self.designated_queries,
            self.combine_queries,
            self.result_hits,
            self.support_misses,
            self.group_commits,
            self.group_commit_events,
            join(
                &self
                    .epoch_frontier
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
            ),
            self.agree,
            self.available_parallelism
        )
    }
}

/// E19 — sharded serving. Two arms:
///
/// **Reads** run the E18-style serving loop (commit one fact off the clock,
/// read the statement warm on the clock) against a full-key grouped MAX at
/// 1, 2, and 4 shards with result patching disabled (`dirty_log_cap: 0`),
/// i.e. the support-miss regime E18 measures the escape from. Unsharded,
/// every write invalidates the whole cached result and the recompute covers
/// the full instance; sharded, the write dirties exactly one shard, the
/// rest answer from their per-snapshot result caches, and the recompute
/// covers 1/N of the facts. The speedup is work confinement, so it holds
/// even on a single core.
///
/// **Writes** commit the same fact set durably (`SyncPolicy::Always`, real
/// directories) two ways: `writers` concurrent threads through the 4-shard
/// group-commit coordinator (concurrent submits to one shard coalesce into
/// one WAL append + one fsync) vs one thread through a single session with
/// one append + fsync per commit.
///
/// Every arm's final answers are checked byte-identical to an unsharded
/// session over the same facts across all routing shapes (fan-out, HAVING,
/// top-k, subset-key combine, residual combine, designated closed lookup).
pub fn bench_shard(y_domain: usize, per_y: usize, rounds: usize, samples: usize) -> ShardBench {
    use rcqa_data::Fact;
    use rcqa_query::{Catalog, TableDef};
    use rcqa_session::{Session, SessionOptions, ShardedSession, SyncPolicy, WalOptions};

    let catalog = || {
        Catalog::new().with_table(
            TableDef::new("S")
                .key_column("Y")
                .key_column("Z")
                .numeric_column("Qty"),
        )
    };
    // One statement per routing shape; the first (full-key fan-out) is the
    // timed one.
    const TIMED: &str = "SELECT S.Y, S.Z, MAX(S.Qty) FROM S GROUP BY S.Y, S.Z";
    // MAX everywhere except the residual shape: MAX is rewriting-backed on
    // both bounds, so these stay on the one-pass pipeline. The residual
    // statement is *meant* to hit the exhaustive fallback (it routes
    // combine and enumerates repairs), which is why the seed keeps the
    // inconsistent-block count tiny.
    const STATEMENTS: &[&str] = &[
        TIMED,
        "SELECT S.Y, S.Z, MAX(S.Qty) FROM S GROUP BY S.Y, S.Z HAVING MAX(S.Qty) > 30",
        "SELECT S.Y, S.Z, MAX(S.Qty) FROM S GROUP BY S.Y, S.Z \
         ORDER BY MAX(S.Qty) DESC LIMIT 5",
        "SELECT S.Y, MAX(S.Qty) FROM S GROUP BY S.Y",
        "SELECT S.Y, S.Z, MIN(S.Qty) FROM S WHERE S.Qty > 15 GROUP BY S.Y, S.Z",
        "SELECT MAX(S.Qty) FROM S WHERE S.Y = 'y000' AND S.Z = 'z000'",
    ];
    let seed_facts = || -> Vec<Fact> {
        let mut facts = Vec::new();
        for y in 0..y_domain {
            for z in 0..per_y {
                let block = y * per_y + z;
                let qty = 10 + (block % 50) as i64;
                let mk = |q: i64| {
                    Fact::new(
                        "S",
                        [
                            Value::text(format!("y{y:03}")),
                            Value::text(format!("z{z:03}")),
                            Value::int(q),
                        ],
                    )
                };
                facts.push(mk(qty));
                if block < 4 {
                    // A handful of inconsistent blocks (two key-equal facts
                    // disagreeing on Qty) keeps the intervals non-trivial
                    // while the residual agree-check statement — whose exact
                    // fallback enumerates every repair — stays at 2^4 = 16
                    // repairs.
                    facts.push(mk(qty + 40));
                }
            }
        }
        facts
    };
    let round_fact = |u: usize| {
        Fact::new(
            "S",
            [
                Value::text(format!("y{:03}", u % y_domain)),
                Value::text(format!("zw{u:03}")),
                Value::int(10 + (u % 50) as i64),
            ],
        )
    };
    let rounds = rounds.max(1);
    let samples = samples.max(1);
    let seeded = seed_facts();
    let blocks = y_domain * per_y;
    let mut agree = true;

    // An unsharded reference at the post-rounds state, shared by every read
    // arm (each arm commits the identical facts).
    let reference = Session::new(catalog());
    reference
        .insert_all(seeded.clone())
        .expect("seed reference");
    for u in 0..rounds {
        reference.insert(round_fact(u)).expect("round fact");
    }

    let shard_counts = vec![1usize, 2, 4];
    let mut read_ms = Vec::with_capacity(shard_counts.len());
    let mut four_shard_stats = None;
    for &shards in &shard_counts {
        let mut best = f64::INFINITY;
        let mut last_session = None;
        for _ in 0..samples {
            let session =
                ShardedSession::new(catalog(), shards).with_session_options(SessionOptions {
                    dirty_log_cap: 0,
                    ..Default::default()
                });
            session.insert_all(seeded.clone()).expect("seed shards");
            session.execute(TIMED).expect("warm-up");
            let mut elapsed = 0.0;
            for u in 0..rounds {
                session.insert(round_fact(u)).expect("round insert");
                let t0 = Instant::now();
                session.execute(TIMED).expect("warm read");
                elapsed += t0.elapsed().as_secs_f64();
            }
            best = best.min(elapsed * 1e3 / rounds as f64);
            last_session = Some(session);
        }
        // Every statement shape must agree with the unsharded reference at
        // the final state. Each sample commits the identical facts, so one
        // check per arm covers them all (the residual statement's
        // exhaustive fallback is deliberately off the clock).
        let session = last_session.expect("at least one sample ran");
        for sql in STATEMENTS {
            let got = session.execute(sql).expect("sharded read");
            let want = reference.execute(sql).expect("reference read");
            agree = agree
                && got.rows == want.rows
                && got.more_aggregates == want.more_aggregates
                && got.having == want.having;
        }
        if shards == 4 {
            four_shard_stats = Some(session.stats());
        }
        read_ms.push(best);
    }
    let four_shard_stats = four_shard_stats.expect("the 4-shard arm ran");
    let read_scaling_at_4 = read_ms[0]
        / read_ms[shard_counts.iter().position(|&s| s == 4).unwrap()].max(f64::MIN_POSITIVE);

    // Write arm: the same durable fact set, group-committed by concurrent
    // writers vs serially committed one by one.
    let writers = 4usize;
    let per_writer = 64usize;
    let write_ops = writers * per_writer;
    let writer_fact = |w: usize, j: usize| {
        Fact::new(
            "S",
            [
                Value::text(format!("wy{w}-{j:03}")),
                Value::text("wz"),
                Value::int((10 + (w * per_writer + j) % 50) as i64),
            ],
        )
    };
    let wal = WalOptions {
        sync: SyncPolicy::Always,
        ..WalOptions::default()
    };
    let dir = tempfile::TempDir::new().expect("tempdir");
    let mut group_best = f64::INFINITY;
    let mut serial_best = f64::INFINITY;
    let mut group_commits = 0;
    let mut group_commit_events = 0;
    for sample in 0..samples {
        let sharded = ShardedSession::open_with(
            catalog(),
            dir.path().join(format!("group-{sample}")),
            4,
            wal,
        )
        .expect("open sharded");
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for w in 0..writers {
                let sharded = &sharded;
                scope.spawn(move || {
                    for j in 0..per_writer {
                        sharded.insert(writer_fact(w, j)).expect("group commit");
                    }
                });
            }
        });
        group_best = group_best.min(t0.elapsed().as_secs_f64());
        let stats = sharded.stats();
        group_commits = stats.group_commits;
        group_commit_events = stats.group_commit_events;

        let serial =
            Session::open_with(catalog(), dir.path().join(format!("serial-{sample}")), wal)
                .expect("open serial");
        let t0 = Instant::now();
        for w in 0..writers {
            for j in 0..per_writer {
                serial.insert(writer_fact(w, j)).expect("serial commit");
            }
        }
        serial_best = serial_best.min(t0.elapsed().as_secs_f64());
        // Both write arms hold the same facts; the sharded union must
        // answer identically to the serial session.
        let got = sharded.execute(TIMED).expect("sharded read");
        let want = serial.execute(TIMED).expect("serial read");
        agree = agree && got.rows == want.rows;
    }
    let group_commit_ops_per_s = write_ops as f64 / group_best.max(f64::MIN_POSITIVE);
    let serial_ops_per_s = write_ops as f64 / serial_best.max(f64::MIN_POSITIVE);

    ShardBench {
        blocks,
        facts: seeded.len(),
        rounds,
        samples,
        shard_counts,
        read_ms,
        read_scaling_at_4,
        writers,
        write_ops,
        group_commit_ops_per_s,
        serial_ops_per_s,
        write_speedup: group_commit_ops_per_s / serial_ops_per_s.max(f64::MIN_POSITIVE),
        fanout_queries: four_shard_stats.fanout_queries,
        designated_queries: four_shard_stats.designated_queries,
        combine_queries: four_shard_stats.combine_queries,
        result_hits: four_shard_stats.totals.result_hits,
        support_misses: four_shard_stats.totals.support_misses,
        group_commits,
        group_commit_events,
        epoch_frontier: four_shard_stats.epoch_frontier,
        agree,
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Formats the E19 report for the harness, surfacing the aggregated
/// [`rcqa_session::ShardedStats`] route and cache counters next to the
/// latencies they explain.
pub fn format_shard(bench: &ShardBench) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E19 Sharded serving: partitioned sessions, fan-out/merge reads, \
         group-commit writes"
    )
    .unwrap();
    writeln!(
        out,
        "  blocks / facts : {} / {} (+{} write rounds per read arm)",
        bench.blocks, bench.facts, bench.rounds
    )
    .unwrap();
    for (s, ms) in bench.shard_counts.iter().zip(bench.read_ms.iter()) {
        writeln!(
            out,
            "  shards = {s:<3} : {ms:.4} ms per write+warm-read round"
        )
        .unwrap();
    }
    writeln!(
        out,
        "  read scaling @4 shards : {:.2}x (work confinement: one dirty shard \
         recomputes, the rest serve cached rows)",
        bench.read_scaling_at_4
    )
    .unwrap();
    writeln!(
        out,
        "  group commit   : {:.0} ops/s ({} writers), serial {:.0} ops/s  ({:.2}x)",
        bench.group_commit_ops_per_s, bench.writers, bench.serial_ops_per_s, bench.write_speedup
    )
    .unwrap();
    writeln!(
        out,
        "  sharded stats  : fanout={}, designated={}, combine={}, \
         result_hits={}, support_misses={}",
        bench.fanout_queries,
        bench.designated_queries,
        bench.combine_queries,
        bench.result_hits,
        bench.support_misses
    )
    .unwrap();
    writeln!(
        out,
        "  group commits  : {} multi-event batches carrying {} events",
        bench.group_commits, bench.group_commit_events
    )
    .unwrap();
    writeln!(
        out,
        "  epoch frontier : [{}] (sums to the front-end epoch)",
        bench
            .epoch_frontier
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    )
    .unwrap();
    writeln!(out, "  answers agree  : {}", bench.agree).unwrap();
    writeln!(
        out,
        "  machine cores  : {} (read scaling holds on one core; write \
         coalescing needs >= 2)",
        bench.available_parallelism
    )
    .unwrap();
    out
}
