//! Storage backends for the WAL: a real directory, an in-memory map, and a
//! deterministic fault injector.
//!
//! The [`WalStorage`] trait is the seam the crash-recovery test matrix is
//! built on: the [`Wal`](crate::Wal) performs every byte of I/O through it,
//! so swapping [`FsStorage`] for a [`FailingStorage`] turns "what if the disk
//! dies after N bytes" into an ordinary deterministic unit test.
//!
//! ## Trait contract
//!
//! A `WalStorage` is a flat namespace of byte files. Implementations must
//! guarantee:
//!
//! * [`append`](WalStorage::append) appends at the end of the named file,
//!   creating it if absent. On error, a **prefix** of the bytes may have been
//!   written (a torn write) — the caller rolls back with
//!   [`truncate`](WalStorage::truncate).
//! * [`sync`](WalStorage::sync) makes previously appended bytes durable
//!   (`fsync`); on success, everything appended before the call survives a
//!   crash.
//! * [`write_atomic`](WalStorage::write_atomic) publishes a complete file
//!   **all-or-nothing**: after a crash at any point, readers see either the
//!   old content (or absence) or the complete new content, never a prefix.
//!   The filesystem implementation writes a temporary file, fsyncs it, and
//!   renames it over the target.
//! * [`truncate`](WalStorage::truncate) shortens a file to a byte length;
//!   [`remove`](WalStorage::remove) deletes it; [`read`](WalStorage::read)
//!   returns the full content; [`list`](WalStorage::list) enumerates file
//!   names (no ordering guarantee).
//!
//! All methods take `&mut self`: the WAL owns its storage and serialises
//! access behind the session's writer lock.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The byte-file namespace the WAL runs on. See the [module docs](self) for
/// the contract each method must honour.
pub trait WalStorage: Send + std::fmt::Debug {
    /// Lists the file names present (order unspecified).
    fn list(&mut self) -> io::Result<Vec<String>>;
    /// Reads a whole file.
    fn read(&mut self, name: &str) -> io::Result<Vec<u8>>;
    /// Appends bytes at the end of a file, creating it if absent. On error a
    /// prefix may have been written.
    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Makes previously appended bytes of the named file durable.
    fn sync(&mut self, name: &str) -> io::Result<()>;
    /// Publishes a complete file atomically and durably (all-or-nothing even
    /// across a crash).
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Shortens a file to `len` bytes.
    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()>;
    /// Deletes a file. Deleting an absent file is an error.
    fn remove(&mut self, name: &str) -> io::Result<()>;
}

/// Directory-backed storage: each WAL file is a real file under `dir`.
///
/// Append handles are cached so the steady-state commit path is one
/// `write(2)` (plus one `fdatasync(2)` when the sync policy asks for it).
/// [`write_atomic`](WalStorage::write_atomic) is temp-file + `fdatasync` +
/// `rename` + directory `fsync`, the standard crash-safe publication dance.
#[derive(Debug)]
pub struct FsStorage {
    dir: PathBuf,
    handles: BTreeMap<String, File>,
}

impl FsStorage {
    /// Opens (creating if needed) the directory the WAL lives in.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<FsStorage> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(FsStorage {
            dir,
            handles: BTreeMap::new(),
        })
    }

    /// The directory backing this storage.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    fn handle(&mut self, name: &str) -> io::Result<&mut File> {
        if !self.handles.contains_key(name) {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.path(name))?;
            self.handles.insert(name.to_string(), file);
        }
        Ok(self.handles.get_mut(name).expect("just inserted"))
    }

    fn sync_dir(&self) -> io::Result<()> {
        // Durability of creates/renames/removes requires fsyncing the parent
        // directory, not just the file.
        File::open(&self.dir)?.sync_all()
    }
}

impl WalStorage for FsStorage {
    fn list(&mut self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        Ok(names)
    }

    fn read(&mut self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(name))
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.handle(name)?.write_all(bytes)
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        match self.handles.get(name) {
            Some(file) => file.sync_data(),
            // Nothing was appended through us; sync whatever is on disk.
            None => match File::open(self.path(name)) {
                Ok(file) => file.sync_data(),
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(e),
            },
        }
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        let target = self.path(name);
        {
            let mut file = File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, &target)?;
        self.handles.remove(name);
        self.sync_dir()
    }

    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        // The cached handle is in append mode; reopen for truncation and
        // drop the cache so the next append reopens at the new length.
        self.handles.remove(name);
        let file = OpenOptions::new().write(true).open(self.path(name))?;
        file.set_len(len)?;
        file.sync_data()
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.handles.remove(name);
        std::fs::remove_file(self.path(name))?;
        self.sync_dir()
    }
}

/// In-memory storage: a shared map of named byte vectors.
///
/// `MemStorage` is cheaply cloneable and **shares** its contents across
/// clones ([`handle`](MemStorage::handle)), so a test can hand one handle to
/// a session's WAL, "crash" the session by dropping it, and recover a new
/// session from the bytes the first one left behind — the in-memory analogue
/// of remounting a disk.
#[derive(Clone, Debug, Default)]
pub struct MemStorage {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemStorage {
    /// An empty storage.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// Another handle onto the **same** underlying files.
    pub fn handle(&self) -> MemStorage {
        self.clone()
    }

    /// The current content of a file, if present (test observation).
    pub fn file(&self, name: &str) -> Option<Vec<u8>> {
        self.files
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Overwrites a file's content wholesale (test tampering: bit flips,
    /// truncations, garbage injection).
    pub fn set_file(&self, name: &str, bytes: Vec<u8>) {
        self.files
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), bytes);
    }

    fn with_files<T>(&self, f: impl FnOnce(&mut BTreeMap<String, Vec<u8>>) -> T) -> T {
        f(&mut self.files.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl WalStorage for MemStorage {
    fn list(&mut self) -> io::Result<Vec<String>> {
        Ok(self.with_files(|files| files.keys().cloned().collect()))
    }

    fn read(&mut self, name: &str) -> io::Result<Vec<u8>> {
        self.with_files(|files| files.get(name).cloned())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no file {name:?}")))
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.with_files(|files| {
            files
                .entry(name.to_string())
                .or_default()
                .extend_from_slice(bytes)
        });
        Ok(())
    }

    fn sync(&mut self, _name: &str) -> io::Result<()> {
        Ok(())
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.with_files(|files| files.insert(name.to_string(), bytes.to_vec()));
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        self.with_files(|files| match files.get_mut(name) {
            Some(content) => {
                content.truncate(len as usize);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no file {name:?}"),
            )),
        })
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.with_files(|files| match files.remove(name) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no file {name:?}"),
            )),
        })
    }
}

/// Deterministic fault injection over a [`MemStorage`]: fail (and tear)
/// writes after a byte budget, or fail any mutating operation after an
/// operation budget.
///
/// * The **byte budget** counts bytes successfully appended (or atomically
///   written). An [`append`](WalStorage::append) that would exceed it writes
///   only the remaining allowance — a *torn write*, exactly what a crash
///   mid-`write(2)` leaves on disk — then fails; every later write fails
///   outright. A [`write_atomic`](WalStorage::write_atomic) that would exceed
///   it fails **without touching the file**, preserving the all-or-nothing
///   contract.
/// * The **operation budget** counts mutating calls (`append`, `sync`,
///   `write_atomic`, `truncate`, `remove`); once spent, each fails before
///   doing anything.
///
/// Reads and listings never fail, so a "crashed" storage can always be
/// inspected and recovered from via the shared [`MemStorage`] handle.
#[derive(Debug)]
pub struct FailingStorage {
    inner: MemStorage,
    byte_budget: u64,
    op_budget: u64,
}

impl FailingStorage {
    /// Unlimited-budget injection over (a handle of) `inner`.
    pub fn new(inner: MemStorage) -> FailingStorage {
        FailingStorage {
            inner,
            byte_budget: u64::MAX,
            op_budget: u64::MAX,
        }
    }

    /// Fails (tearing appends) after `n` more written bytes.
    pub fn with_byte_budget(mut self, n: u64) -> FailingStorage {
        self.byte_budget = n;
        self
    }

    /// Fails any mutating operation after `n` more of them.
    pub fn with_op_budget(mut self, n: u64) -> FailingStorage {
        self.op_budget = n;
        self
    }

    /// A handle onto the surviving bytes (what "the disk" holds).
    pub fn surviving(&self) -> MemStorage {
        self.inner.handle()
    }

    fn fault(what: &str) -> io::Error {
        io::Error::other(format!("fault injection: {what}"))
    }

    fn take_op(&mut self, what: &str) -> io::Result<()> {
        if self.op_budget == 0 {
            return Err(Self::fault(what));
        }
        self.op_budget -= 1;
        Ok(())
    }
}

impl WalStorage for FailingStorage {
    fn list(&mut self) -> io::Result<Vec<String>> {
        self.inner.list()
    }

    fn read(&mut self, name: &str) -> io::Result<Vec<u8>> {
        self.inner.read(name)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.take_op("append op budget exhausted")?;
        if (bytes.len() as u64) <= self.byte_budget {
            self.byte_budget -= bytes.len() as u64;
            return self.inner.append(name, bytes);
        }
        // Torn write: persist the prefix the budget still allows, then die.
        let torn = &bytes[..self.byte_budget as usize];
        self.byte_budget = 0;
        self.inner.append(name, torn)?;
        Err(Self::fault("byte budget exhausted mid-append (torn write)"))
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        self.take_op("sync op budget exhausted")?;
        self.inner.sync(name)
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.take_op("write_atomic op budget exhausted")?;
        if (bytes.len() as u64) > self.byte_budget {
            // Atomic: the target is untouched on failure.
            self.byte_budget = 0;
            return Err(Self::fault("byte budget exhausted before write_atomic"));
        }
        self.byte_budget -= bytes.len() as u64;
        self.inner.write_atomic(name, bytes)
    }

    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        self.take_op("truncate op budget exhausted")?;
        self.inner.truncate(name, len)
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.take_op("remove op budget exhausted")?;
        self.inner.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_handles_share_content() {
        let mut a = MemStorage::new();
        let mut b = a.handle();
        a.append("f", b"hello").unwrap();
        assert_eq!(b.read("f").unwrap(), b"hello");
        b.truncate("f", 2).unwrap();
        assert_eq!(a.read("f").unwrap(), b"he");
        assert!(a.remove("missing").is_err());
    }

    #[test]
    fn failing_storage_tears_appends_at_the_byte_budget() {
        let mem = MemStorage::new();
        let mut failing = FailingStorage::new(mem.handle()).with_byte_budget(7);
        failing.append("f", b"hello").unwrap();
        // 2 bytes of budget left: the next append tears.
        assert!(failing.append("f", b"world").is_err());
        assert_eq!(mem.file("f").unwrap(), b"hellowo");
        // And every later write fails without effect.
        assert!(failing.append("f", b"!").is_err());
        assert_eq!(mem.file("f").unwrap(), b"hellowo");
    }

    #[test]
    fn failing_storage_keeps_write_atomic_all_or_nothing() {
        let mem = MemStorage::new();
        let mut failing = FailingStorage::new(mem.handle()).with_byte_budget(3);
        failing.write_atomic("ck", b"abc").unwrap();
        assert!(failing.write_atomic("ck", b"xyzw").is_err());
        assert_eq!(mem.file("ck").unwrap(), b"abc", "old content intact");
    }

    #[test]
    fn failing_storage_op_budget_counts_mutations_only() {
        let mem = MemStorage::new();
        let mut failing = FailingStorage::new(mem.handle()).with_op_budget(2);
        failing.append("f", b"a").unwrap();
        failing.sync("f").unwrap();
        assert!(failing.append("f", b"b").is_err());
        // Reads stay available after the "crash".
        assert_eq!(failing.read("f").unwrap(), b"a");
        assert_eq!(failing.list().unwrap(), vec!["f".to_string()]);
    }
}
