//! # rcqa-wal
//!
//! Durability for the rcqa serving layer: an **append-only, epoch-keyed
//! write-ahead log** of [`DeltaEvent`] batches plus **checkpointed
//! snapshots**, built for the session's snapshot-chain architecture — a
//! commit already produces an explicit effective-event batch and a monotone
//! epoch, which is exactly a log record.
//!
//! The workspace builds offline (no `serde`, no `crc`, no `tempfile` from
//! crates.io — see `crates/shims`), so the record format is hand-rolled:
//! length-prefixed binary records carrying epoch, op, and facts
//! ([`rcqa_data::codec`]: `Value`/`Rational` encoded exactly, `i128`
//! numerator/denominator as raw little-endian bytes), each guarded by an
//! in-tree CRC32 ([`crc32::crc32`]).
//!
//! ## Log structure
//!
//! A WAL directory holds **segments** (`wal-<start-epoch>.log`) and
//! **checkpoints** (`ck-<epoch>.snap`):
//!
//! * a segment named `wal-S` contains records for epochs `> S`, in order;
//!   consecutive records satisfy `epoch == previous + |events|`, an
//!   integrity chain the recovery parser enforces ([`record`]).
//! * a checkpoint named `ck-E` is the complete fact set at epoch `E`,
//!   published atomically (temp file + fsync + rename + directory fsync).
//!   Writing one starts a fresh segment; **older segments are removed only
//!   once the oldest *retained* checkpoint durably covers them**, so every
//!   retained checkpoint always has a full replay chain behind it.
//!
//! ## Recovery semantics
//!
//! [`Wal::open`] loads the **newest valid checkpoint** (corrupt checkpoint
//! files are skipped — and deleted — in favour of older retained ones),
//! then parses the segment chain and returns the batches with epochs past
//! the checkpoint for the caller to replay. Failure handling is two-sided
//! by design:
//!
//! * a **torn tail** — the newest segment ends mid-record, exactly what a
//!   crash mid-append leaves — is truncated away, recovering the longest
//!   valid prefix;
//! * **interior corruption** — a bad length/checksum *before* the tail, a
//!   broken epoch chain, a gap between segments — is reported as
//!   [`WalError::Corrupt`] with the file and byte offset. Committed history
//!   is never silently dropped, reordered, or duplicated.
//!
//! ## Sync policies
//!
//! [`SyncPolicy`] trades write latency for the crash-durability window:
//!
//! * [`Always`](SyncPolicy::Always) — fsync before every commit
//!   acknowledgement; an acknowledged commit survives any crash.
//! * [`EveryN(n)`](SyncPolicy::EveryN) — fsync once per `n` appends; a
//!   crash may lose up to the last `n − 1` acknowledged commits (they roll
//!   back **as a suffix** — never a gap).
//! * [`Never`](SyncPolicy::Never) — leave flushing to the OS; a process
//!   crash loses nothing (the bytes are in the page cache), an OS crash may
//!   lose any unflushed suffix.
//!
//! If an append fails (disk full, permission lost, injected fault), the
//! partial record is rolled back by truncation and the error is returned —
//! the log never acknowledges a record it could not write whole. If even
//! the rollback fails, the WAL **poisons** itself: every later append fails
//! fast, while reads (and the owning session's in-memory serving) continue.
//!
//! ## Fault injection
//!
//! Every byte of I/O goes through the [`storage::WalStorage`] trait.
//! [`storage::FsStorage`] is the real directory; [`storage::MemStorage`] is
//! a shared in-memory map; [`storage::FailingStorage`] deterministically
//! tears writes after a byte budget or fails operations after an op budget,
//! which is how the crash-recovery test matrix drives every fault point
//! without a single real crash.

#![warn(missing_docs)]

pub mod crc32;
pub mod record;
pub mod storage;

pub use record::Batch;
pub use storage::{FailingStorage, FsStorage, MemStorage, WalStorage};

use rcqa_data::{DeltaEvent, Fact};
use record::{decode_checkpoint, encode_checkpoint, encode_record, parse_segment};
use std::fmt;
use std::io;
use std::sync::Arc;

/// Errors raised by the WAL.
///
/// `Io` chains the underlying [`std::io::Error`] through
/// [`std::error::Error::source`]; `Corrupt` pinpoints the file and byte
/// offset where recovery found interior damage.
#[derive(Debug, Clone)]
pub enum WalError {
    /// An I/O operation failed; the source error is attached.
    Io(Arc<io::Error>),
    /// The log or a checkpoint is damaged in a way a crash cannot explain
    /// (interior bad length/checksum, broken epoch chain, missing segment).
    Corrupt {
        /// The file the damage was found in.
        file: String,
        /// Byte offset of the damaged record within that file.
        offset: u64,
        /// What was wrong there.
        detail: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::Corrupt {
                file,
                offset,
                detail,
            } => {
                write!(f, "WAL corrupt: {file} at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(&**e),
            WalError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> WalError {
        WalError::Io(Arc::new(e))
    }
}

/// When the log fsyncs relative to commit acknowledgement. See the
/// [crate docs](self) for the guarantee each policy buys.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Fsync before every commit acknowledgement.
    #[default]
    Always,
    /// Fsync once every `n` appends (`EveryN(1)` ≡ `Always`; `n` is clamped
    /// to at least 1).
    EveryN(u64),
    /// Never fsync from the WAL; flushing is the OS's business.
    Never,
}

/// Configuration of a [`Wal`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalOptions {
    /// Fsync cadence (default [`SyncPolicy::Always`]).
    pub sync: SyncPolicy,
    /// Write a checkpoint once at least this many epochs accumulated since
    /// the last one; `0` disables checkpointing (default `1024`).
    pub checkpoint_every: u64,
    /// How many checkpoints to keep (at least 1; default 2 — the newest
    /// plus one fallback in case the newest file rots).
    pub retain_checkpoints: usize,
}

impl Default for WalOptions {
    fn default() -> WalOptions {
        WalOptions {
            sync: SyncPolicy::default(),
            checkpoint_every: 1024,
            retain_checkpoints: 2,
        }
    }
}

/// What [`Wal::open`] recovered from storage: the newest valid checkpoint
/// (if any) and the log tail past it, ready for the caller to replay.
#[derive(Debug)]
pub struct Recovery {
    /// Epoch of the checkpoint the recovery starts from (0 when none).
    pub checkpoint_epoch: u64,
    /// The checkpoint's facts (empty when none).
    pub checkpoint_facts: Vec<Fact>,
    /// Log batches with epochs past the checkpoint, oldest first. Replaying
    /// them in order over the checkpoint reaches [`Recovery::epoch`].
    pub batches: Vec<Batch>,
    /// The recovered epoch: the last batch's, or the checkpoint's.
    pub epoch: u64,
    /// `Some((file, valid_len))` when a torn tail was found and truncated
    /// away at `valid_len`.
    pub torn_tail: Option<(String, u64)>,
    /// Corrupt checkpoint files that were skipped (and removed) in favour of
    /// an older retained checkpoint.
    pub skipped_checkpoints: Vec<String>,
}

/// The file name of the segment whose records have epochs `> start`.
pub fn segment_name(start: u64) -> String {
    format!("wal-{start:020}.log")
}

/// The file name of the checkpoint holding the fact set at `epoch`.
pub fn checkpoint_name(epoch: u64) -> String {
    format!("ck-{epoch:020}.snap")
}

fn parse_name(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let digits = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The write-ahead log: an owned [`WalStorage`] plus the in-memory cursor
/// state (active segment, epoch positions, sync debt).
///
/// A `Wal` is single-writer by construction — the owning session serialises
/// appends behind its writer lock. All mutating methods take `&mut self`.
#[derive(Debug)]
pub struct Wal {
    storage: Box<dyn WalStorage>,
    options: WalOptions,
    /// Start epochs of live segments, ascending; the last is the active one.
    segments: Vec<u64>,
    /// Epochs of retained checkpoints, ascending.
    checkpoints: Vec<u64>,
    /// Byte length of the active segment's valid content.
    active_len: u64,
    /// Epoch of the last appended record.
    last_epoch: u64,
    /// Last epoch known durable (covered by an fsync or a checkpoint).
    durable_epoch: u64,
    /// Appends since the last fsync.
    unsynced: u64,
    /// Set when a failed append could not be rolled back: the log's tail is
    /// in an unknown state, so further appends must not land after it.
    poisoned: bool,
}

impl Wal {
    /// Opens a WAL over `storage`, recovering whatever a previous process
    /// left: the newest valid checkpoint plus the replayable log tail.
    ///
    /// A fresh (empty) storage opens at epoch 0 with an empty [`Recovery`].
    /// A torn tail on the newest segment is truncated; interior corruption
    /// is a [`WalError::Corrupt`].
    pub fn open(
        mut storage: Box<dyn WalStorage>,
        options: WalOptions,
    ) -> Result<(Wal, Recovery), WalError> {
        let names = storage.list()?;
        let mut segment_starts: Vec<u64> = Vec::new();
        let mut checkpoint_epochs: Vec<u64> = Vec::new();
        for name in &names {
            if let Some(start) = parse_name(name, "wal-", ".log") {
                segment_starts.push(start);
            } else if let Some(epoch) = parse_name(name, "ck-", ".snap") {
                checkpoint_epochs.push(epoch);
            } else if name.ends_with(".tmp") {
                // A checkpoint publication died before its rename; the
                // half-written temp file is garbage by construction.
                let _ = storage.remove(name);
            }
        }
        segment_starts.sort_unstable();
        checkpoint_epochs.sort_unstable();

        // Newest valid checkpoint wins; corrupt ones are skipped (and
        // deleted, so they can never later license segment eviction they
        // do not actually cover).
        let mut skipped_checkpoints = Vec::new();
        let mut checkpoint: Option<(u64, Vec<Fact>)> = None;
        while let Some(epoch) = checkpoint_epochs.pop() {
            let file = checkpoint_name(epoch);
            let valid = match storage.read(&file) {
                Ok(bytes) => match decode_checkpoint(&file, &bytes) {
                    Ok((payload_epoch, facts)) if payload_epoch == epoch => Some(facts),
                    _ => None,
                },
                Err(_) => None,
            };
            match valid {
                Some(facts) => {
                    checkpoint = Some((epoch, facts));
                    checkpoint_epochs.push(epoch);
                    break;
                }
                None => {
                    skipped_checkpoints.push(file.clone());
                    let _ = storage.remove(&file);
                }
            }
        }
        let base_epoch = checkpoint.as_ref().map(|(e, _)| *e).unwrap_or(0);

        // Parse every segment; only the newest may end in a torn tail.
        let mut batches: Vec<Batch> = Vec::new();
        let mut torn_tail = None;
        for (i, &start) in segment_starts.iter().enumerate() {
            let file = segment_name(start);
            let bytes = storage.read(&file)?;
            let newest = i + 1 == segment_starts.len();
            let parsed = parse_segment(&file, &bytes, start, newest)?;
            if parsed.torn {
                storage.truncate(&file, parsed.valid_len)?;
                torn_tail = Some((file.clone(), parsed.valid_len));
            }
            batches.extend(parsed.batches);
        }

        // Keep the tail past the checkpoint and verify it chains from it:
        // recovery must reach the pre-crash epoch through a gap-free,
        // duplicate-free sequence or refuse outright.
        batches.retain(|b| b.epoch > base_epoch);
        let mut prev = base_epoch;
        for batch in &batches {
            let expected = prev + batch.events.len() as u64;
            if batch.epoch != expected {
                return Err(WalError::Corrupt {
                    file: segment_name(*segment_starts.last().unwrap_or(&0)),
                    offset: 0,
                    detail: format!(
                        "log does not chain from checkpoint epoch {base_epoch}: \
                         found epoch {}, expected {expected}",
                        batch.epoch
                    ),
                });
            }
            prev = batch.epoch;
        }
        let epoch = prev;

        // Start (or reuse) the segment named after the recovered epoch. If
        // a segment of that name exists it cannot hold valid records —
        // records in `wal-E` have epochs > E, which would contradict E
        // being the recovered epoch — so its valid length is 0.
        let active_len = if segment_starts.last() == Some(&epoch) {
            0
        } else {
            segment_starts.push(epoch);
            0
        };

        let (checkpoint_epoch, checkpoint_facts) = checkpoint.unwrap_or((0, Vec::new()));
        let recovery = Recovery {
            checkpoint_epoch,
            checkpoint_facts,
            batches,
            epoch,
            torn_tail,
            skipped_checkpoints,
        };
        let wal = Wal {
            storage,
            options,
            segments: segment_starts,
            checkpoints: checkpoint_epochs,
            active_len,
            last_epoch: epoch,
            // Everything recovered is on storage already; it is as durable
            // as the previous process left it.
            durable_epoch: epoch,
            unsynced: 0,
            poisoned: false,
        };
        Ok((wal, recovery))
    }

    /// The WAL's configuration.
    pub fn options(&self) -> &WalOptions {
        &self.options
    }

    /// Epoch of the last appended record.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Last epoch known durable: covered by an fsync or a checkpoint. Under
    /// [`SyncPolicy::Never`] this only advances at checkpoints.
    pub fn durable_epoch(&self) -> u64 {
        self.durable_epoch
    }

    /// Whether a failed append left the log tail unrecoverable in-process
    /// (all further appends fail fast).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Start epochs of the live segments, oldest first (tests/observability).
    pub fn segment_starts(&self) -> &[u64] {
        &self.segments
    }

    /// Epochs of the retained checkpoints, oldest first.
    pub fn checkpoint_epochs(&self) -> &[u64] {
        &self.checkpoints
    }

    /// Whether the configured checkpoint interval has elapsed since the last
    /// checkpoint (callers snapshot the instance and call
    /// [`Wal::checkpoint`]).
    pub fn checkpoint_due(&self) -> bool {
        self.options.checkpoint_every > 0
            && self.last_epoch - self.last_checkpoint_epoch() >= self.options.checkpoint_every
    }

    fn last_checkpoint_epoch(&self) -> u64 {
        self.checkpoints.last().copied().unwrap_or(0)
    }

    fn active_name(&self) -> String {
        segment_name(*self.segments.last().expect("always one segment"))
    }

    /// Appends one committed batch, then fsyncs per the [`SyncPolicy`].
    ///
    /// `epoch` must be the session epoch **after** the batch:
    /// `last_epoch() + events.len()`. On any failure the partial record is
    /// rolled back by truncation and nothing is acknowledged; if the
    /// rollback itself fails the WAL poisons itself (the owning session
    /// keeps serving reads, but no further writes can be made durable).
    pub fn append(&mut self, epoch: u64, events: &[DeltaEvent]) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Io(Arc::new(io::Error::other(
                "WAL is poisoned: a failed append could not be rolled back",
            ))));
        }
        let expected = self.last_epoch + events.len() as u64;
        if events.is_empty() || epoch != expected {
            return Err(WalError::Io(Arc::new(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("append out of sequence: epoch {epoch}, expected {expected}"),
            ))));
        }
        let name = self.active_name();
        let record = encode_record(epoch, events);
        if let Err(e) = self.storage.append(&name, &record) {
            // A prefix may be on storage: truncate it back to the last good
            // record boundary so later appends cannot land after garbage.
            if self.storage.truncate(&name, self.active_len).is_err() {
                self.poisoned = true;
            }
            return Err(e.into());
        }
        self.active_len += record.len() as u64;
        self.last_epoch = epoch;
        self.unsynced += 1;
        let sync_now = match self.options.sync {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            SyncPolicy::Never => false,
        };
        if sync_now {
            if let Err(e) = self.storage.sync(&name) {
                // The record is written but not durable, and the caller
                // will fail this commit: roll the record back so recovery
                // cannot replay a batch that was never acknowledged.
                self.active_len -= record.len() as u64;
                self.last_epoch = epoch - events.len() as u64;
                self.unsynced -= 1;
                if self.storage.truncate(&name, self.active_len).is_err() {
                    self.poisoned = true;
                }
                return Err(e.into());
            }
            self.unsynced = 0;
            self.durable_epoch = self.last_epoch;
        }
        Ok(())
    }

    /// Forces an fsync of the active segment, making every appended record
    /// durable regardless of policy.
    pub fn sync(&mut self) -> Result<(), WalError> {
        let name = self.active_name();
        self.storage.sync(&name)?;
        self.unsynced = 0;
        self.durable_epoch = self.last_epoch;
        Ok(())
    }

    /// Writes a checkpoint of the complete fact set at `epoch` (which must
    /// be [`Wal::last_epoch`] — checkpoints snapshot the just-published
    /// state), then starts a fresh segment and evicts storage the retained
    /// checkpoints no longer need:
    ///
    /// 1. the checkpoint file is published atomically (temp + fsync +
    ///    rename), so a crash at any point leaves the previous checkpoint
    ///    intact;
    /// 2. checkpoints beyond [`WalOptions::retain_checkpoints`] are removed,
    ///    newest kept;
    /// 3. segments whose every record is covered by the **oldest retained**
    ///    checkpoint are removed — only after step 1 made that coverage
    ///    durable.
    ///
    /// On failure the log is untouched and fully replayable; the caller may
    /// simply try again later.
    pub fn checkpoint<'a>(
        &mut self,
        epoch: u64,
        facts: impl Iterator<Item = &'a Fact>,
    ) -> Result<(), WalError> {
        if epoch != self.last_epoch {
            return Err(WalError::Io(Arc::new(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "checkpoint at epoch {epoch} but the log is at {}",
                    self.last_epoch
                ),
            ))));
        }
        let bytes = encode_checkpoint(epoch, facts);
        self.storage.write_atomic(&checkpoint_name(epoch), &bytes)?;
        self.checkpoints.push(epoch);
        // The checkpoint durably covers every epoch <= its own.
        self.durable_epoch = self.durable_epoch.max(epoch);
        self.unsynced = 0;
        // Start a fresh segment (created lazily by the next append).
        if self.segments.last() != Some(&epoch) {
            self.segments.push(epoch);
            self.active_len = 0;
        }
        // Retention + eviction, best-effort: a file that refuses to die is
        // harmless (recovery skips covered records) and will be retried at
        // the next checkpoint.
        while self.checkpoints.len() > self.options.retain_checkpoints.max(1) {
            let old = self.checkpoints.remove(0);
            let _ = self.storage.remove(&checkpoint_name(old));
        }
        let covered = self.checkpoints[0];
        while self.segments.len() >= 2 && self.segments[1] <= covered {
            let dead = self.segments[0];
            if self.storage.remove(&segment_name(dead)).is_err() {
                break;
            }
            self.segments.remove(0);
        }
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort: a cleanly dropped WAL leaves no sync debt behind.
        if self.unsynced > 0 && !self.poisoned {
            let name = self.active_name();
            let _ = self.storage.sync(&name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::fact;

    fn ev(tag: &str) -> DeltaEvent {
        DeltaEvent::insert(fact!("R", tag, 1))
    }

    fn open_mem(mem: &MemStorage, options: WalOptions) -> (Wal, Recovery) {
        Wal::open(Box::new(mem.handle()), options).expect("open")
    }

    #[test]
    fn fresh_log_appends_and_recovers() {
        let mem = MemStorage::new();
        let (mut wal, rec) = open_mem(&mem, WalOptions::default());
        assert_eq!(rec.epoch, 0);
        assert!(rec.batches.is_empty());
        wal.append(2, &[ev("a"), ev("b")]).unwrap();
        wal.append(3, &[ev("c")]).unwrap();
        assert_eq!(wal.durable_epoch(), 3);
        drop(wal);

        let (wal, rec) = open_mem(&mem, WalOptions::default());
        assert_eq!(rec.epoch, 3);
        assert_eq!(rec.checkpoint_epoch, 0);
        assert_eq!(rec.batches.len(), 2);
        assert_eq!(rec.batches[0].events, vec![ev("a"), ev("b")]);
        assert_eq!(wal.last_epoch(), 3);
    }

    #[test]
    fn out_of_sequence_appends_are_rejected() {
        let mem = MemStorage::new();
        let (mut wal, _) = open_mem(&mem, WalOptions::default());
        assert!(wal.append(5, &[ev("a")]).is_err(), "gap");
        assert!(wal.append(0, &[]).is_err(), "empty batch");
        wal.append(1, &[ev("a")]).unwrap();
        assert!(wal.append(1, &[ev("b")]).is_err(), "duplicate epoch");
    }

    #[test]
    fn every_n_policy_tracks_durable_epoch() {
        let mem = MemStorage::new();
        let options = WalOptions {
            sync: SyncPolicy::EveryN(3),
            ..WalOptions::default()
        };
        let (mut wal, _) = open_mem(&mem, options);
        wal.append(1, &[ev("a")]).unwrap();
        wal.append(2, &[ev("b")]).unwrap();
        assert_eq!(wal.durable_epoch(), 0, "no fsync yet");
        wal.append(3, &[ev("c")]).unwrap();
        assert_eq!(wal.durable_epoch(), 3, "third append syncs");
        wal.append(4, &[ev("d")]).unwrap();
        assert_eq!(wal.durable_epoch(), 3);
        wal.sync().unwrap();
        assert_eq!(wal.durable_epoch(), 4);
    }

    #[test]
    fn checkpoints_rotate_segments_and_evict_covered_history() {
        let mem = MemStorage::new();
        let options = WalOptions {
            checkpoint_every: 0, // manual checkpoints in this test
            retain_checkpoints: 2,
            ..WalOptions::default()
        };
        let (mut wal, _) = open_mem(&mem, options);
        let facts = [fact!("R", "a", 1)];
        wal.append(1, &[ev("a")]).unwrap();
        wal.checkpoint(1, facts.iter()).unwrap();
        wal.append(2, &[ev("b")]).unwrap();
        wal.checkpoint(2, facts.iter()).unwrap();
        wal.append(3, &[ev("c")]).unwrap();
        wal.checkpoint(3, facts.iter()).unwrap();
        // Two checkpoints retained; the oldest (ck-1) was evicted, and with
        // it every segment fully covered by ck-2: wal-0 and wal-1.
        assert_eq!(wal.checkpoint_epochs(), &[2, 3]);
        assert_eq!(wal.segment_starts(), &[2, 3]);
        assert!(mem.file(&checkpoint_name(1)).is_none());
        assert!(mem.file(&segment_name(0)).is_none());
        assert!(mem.file(&segment_name(1)).is_none());

        // Recovery uses the newest checkpoint and the (empty) tail.
        let (_, rec) = open_mem(&mem, options);
        assert_eq!(rec.checkpoint_epoch, 3);
        assert_eq!(rec.epoch, 3);
        assert!(rec.batches.is_empty());
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_the_previous_one() {
        let mem = MemStorage::new();
        let options = WalOptions {
            checkpoint_every: 0,
            retain_checkpoints: 2,
            ..WalOptions::default()
        };
        let (mut wal, _) = open_mem(&mem, options);
        wal.append(1, &[ev("a")]).unwrap();
        wal.checkpoint(1, [fact!("R", "a", 1)].iter()).unwrap();
        wal.append(2, &[ev("b")]).unwrap();
        wal.checkpoint(2, [fact!("R", "a", 1), fact!("R", "b", 1)].iter())
            .unwrap();
        wal.append(3, &[ev("c")]).unwrap();
        drop(wal);
        // Rot the newest checkpoint.
        let name = checkpoint_name(2);
        let mut bytes = mem.file(&name).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        mem.set_file(&name, bytes);

        let (_, rec) = open_mem(&mem, options);
        assert_eq!(rec.checkpoint_epoch, 1);
        assert_eq!(rec.checkpoint_facts, vec![fact!("R", "a", 1)]);
        // The tail replays from epoch 1: batches for epochs 2 and 3.
        assert_eq!(
            rec.batches.iter().map(|b| b.epoch).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(rec.epoch, 3);
        assert_eq!(rec.skipped_checkpoints, vec![name.clone()]);
        // The rotten file was deleted so it can never shadow good state.
        assert!(mem.file(&name).is_none());
    }

    #[test]
    fn failed_append_rolls_back_and_keeps_the_log_replayable() {
        let mem = MemStorage::new();
        let (mut wal, _) = open_mem(&mem, WalOptions::default());
        wal.append(1, &[ev("a")]).unwrap();
        drop(wal);

        // Allow ~1.5 records worth of bytes: the second append tears.
        let good_len = mem.file(&segment_name(0)).unwrap().len() as u64;
        let failing = FailingStorage::new(mem.handle()).with_byte_budget(good_len / 2);
        let (mut wal, rec) = Wal::open(Box::new(failing), WalOptions::default()).unwrap();
        assert_eq!(rec.epoch, 1);
        let err = wal.append(2, &[ev("b")]).unwrap_err();
        assert!(matches!(err, WalError::Io(_)), "{err}");
        // The torn prefix was truncated away; the log still holds exactly
        // the acknowledged batch and recovers cleanly.
        assert!(!wal.is_poisoned());
        drop(wal);
        let (_, rec) = open_mem(&mem, WalOptions::default());
        assert_eq!(rec.epoch, 1);
        assert_eq!(rec.batches.len(), 1);
    }

    #[test]
    fn failed_checkpoint_leaves_old_state_intact() {
        let mem = MemStorage::new();
        let options = WalOptions {
            checkpoint_every: 0,
            ..WalOptions::default()
        };
        let (mut wal, _) = open_mem(&mem, options);
        wal.append(1, &[ev("a")]).unwrap();
        wal.checkpoint(1, [fact!("R", "a", 1)].iter()).unwrap();
        wal.append(2, &[ev("b")]).unwrap();
        drop(wal);

        // Checkpoint 2 fails atomically (no bytes land); everything else
        // still recovers.
        let failing = FailingStorage::new(mem.handle())
            .with_byte_budget(mem.file(&segment_name(1)).unwrap().len() as u64);
        let (mut wal, _) = Wal::open(Box::new(failing), options).unwrap();
        let err = wal
            .checkpoint(2, [fact!("R", "a", 1), fact!("R", "b", 1)].iter())
            .unwrap_err();
        assert!(matches!(err, WalError::Io(_)), "{err}");
        drop(wal);
        let (_, rec) = open_mem(&mem, options);
        assert_eq!(rec.checkpoint_epoch, 1);
        assert_eq!(rec.epoch, 2);
    }

    #[test]
    fn missing_segment_between_checkpoint_and_tail_is_corrupt() {
        let mem = MemStorage::new();
        let options = WalOptions {
            checkpoint_every: 0,
            ..WalOptions::default()
        };
        let (mut wal, _) = open_mem(&mem, options);
        wal.append(1, &[ev("a")]).unwrap();
        wal.append(2, &[ev("b")]).unwrap();
        wal.checkpoint(2, [fact!("R", "a", 1), fact!("R", "b", 1)].iter())
            .unwrap();
        wal.append(3, &[ev("c")]).unwrap();
        wal.append(4, &[ev("d")]).unwrap();
        drop(wal);
        // The checkpoint's own eviction already removed the pre-checkpoint
        // segment; losing the checkpoint too leaves a tail (epochs 3, 4)
        // that no longer chains from anything.
        assert!(mem.file(&segment_name(0)).is_none());
        let mut handle = mem.handle();
        handle.remove(&checkpoint_name(2)).unwrap();
        let err = Wal::open(Box::new(mem.handle()), options).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn fs_storage_roundtrips_through_a_real_directory() {
        let dir = tempfile::TempDir::new().expect("tempdir");
        let options = WalOptions {
            checkpoint_every: 0,
            ..WalOptions::default()
        };
        {
            let storage = FsStorage::open(dir.path()).unwrap();
            let (mut wal, rec) = Wal::open(Box::new(storage), options).unwrap();
            assert_eq!(rec.epoch, 0);
            wal.append(1, &[ev("a")]).unwrap();
            wal.append(3, &[ev("b"), ev("c")]).unwrap();
            wal.checkpoint(3, [fact!("R", "a", 1)].iter()).unwrap();
            wal.append(4, &[ev("d")]).unwrap();
        }
        let storage = FsStorage::open(dir.path()).unwrap();
        let (wal, rec) = Wal::open(Box::new(storage), options).unwrap();
        assert_eq!(rec.checkpoint_epoch, 3);
        assert_eq!(rec.checkpoint_facts, vec![fact!("R", "a", 1)]);
        assert_eq!(rec.batches.len(), 1);
        assert_eq!(rec.epoch, 4);
        assert_eq!(wal.last_epoch(), 4);
    }
}
