//! An in-tree CRC-32 (IEEE 802.3, the `zlib`/`cksum -o3` polynomial).
//!
//! The registry is offline, so the WAL cannot pull the `crc32fast` crate;
//! this is the classic byte-at-a-time table-driven implementation. Every WAL
//! record and checkpoint guards its payload with this checksum — speed is a
//! non-issue next to the `write(2)` the bytes are headed for.

/// The reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// The CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"hello world");
        let mut bytes = b"hello world".to_vec();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                bytes[i] ^= 1 << bit;
                assert_ne!(crc32(&bytes), base, "flip at byte {i} bit {bit}");
                bytes[i] ^= 1 << bit;
            }
        }
    }
}
