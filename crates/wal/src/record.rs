//! On-disk formats: WAL records, segment parsing, and checkpoint files.
//!
//! ## Record layout
//!
//! A segment file is a plain concatenation of records. All integers are
//! little-endian; fact/value layouts come from [`rcqa_data::codec`].
//!
//! ```text
//! record  := [len: u32] [crc: u32] [payload: len bytes]
//! payload := [epoch: u64] [count: u32] event*
//! ```
//!
//! `crc` is the CRC-32 ([`crate::crc32`]) of `payload`. `epoch` is the
//! session epoch **after** the batch applied; since the session advances the
//! epoch by the number of effective events per commit, consecutive records
//! satisfy `epoch == previous_epoch + count` — an integrity invariant the
//! parser enforces, so a dropped, duplicated, or reordered record can never
//! replay silently.
//!
//! ## Torn tail vs interior corruption
//!
//! [`parse_segment`] distinguishes the two failure shapes a log can wake up
//! with:
//!
//! * a **torn tail** — the file ends mid-record (incomplete header, payload
//!   shorter than its length prefix, or a checksum-invalid record that runs
//!   to exactly end-of-file). That is what a crash mid-append leaves behind;
//!   the parser reports the valid prefix length and the caller truncates.
//! * **interior corruption** — a checksum/length/decode failure *followed by
//!   more bytes*, or a broken epoch chain. No crash produces that; it means
//!   the storage lied, and the parser refuses with [`WalError::Corrupt`]
//!   rather than silently dropping committed history.
//!
//! ## Checkpoint layout
//!
//! ```text
//! checkpoint := [magic: u32 = "RCK1"] [crc: u32] [payload]
//! payload    := [epoch: u64] [count: u64] fact*
//! ```
//!
//! `crc` guards `payload`. Checkpoints are written through
//! [`WalStorage::write_atomic`](crate::storage::WalStorage::write_atomic),
//! so a reader sees a complete checkpoint or none; a checksum failure here
//! means bit rot, and recovery falls back to the previous retained
//! checkpoint.

use crate::crc32::crc32;
use crate::WalError;
use rcqa_data::codec::{self, Reader};
use rcqa_data::{DeltaEvent, Fact};

/// Sanity cap on a single record's payload (256 MiB). A length prefix above
/// this is treated like any other bad length: torn if it runs to end-of-file,
/// corrupt otherwise.
pub const MAX_RECORD_LEN: u32 = 1 << 28;

/// Checkpoint file magic: `RCK1` little-endian.
const CHECKPOINT_MAGIC: u32 = u32::from_le_bytes(*b"RCK1");

/// One decoded WAL record: the batch of effective events that moved the
/// session to `epoch`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Batch {
    /// The session epoch after this batch applied.
    pub epoch: u64,
    /// The batch's effective events, in commit order.
    pub events: Vec<DeltaEvent>,
}

/// The outcome of parsing one segment file.
#[derive(Debug)]
pub struct ParsedSegment {
    /// The records, oldest first.
    pub batches: Vec<Batch>,
    /// Length of the valid prefix. Shorter than the file when a torn tail
    /// was dropped.
    pub valid_len: u64,
    /// Whether bytes past `valid_len` were discarded as a torn tail.
    pub torn: bool,
}

/// Encodes one record (length prefix + CRC + payload).
pub fn encode_record(epoch: u64, events: &[DeltaEvent]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + events.len() * 32);
    payload.extend_from_slice(&epoch.to_le_bytes());
    payload.extend_from_slice(&(events.len() as u32).to_le_bytes());
    for event in events {
        codec::encode_event(event, &mut payload);
    }
    debug_assert!(payload.len() <= MAX_RECORD_LEN as usize, "record too large");
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn corrupt(file: &str, offset: u64, detail: impl Into<String>) -> WalError {
    WalError::Corrupt {
        file: file.to_string(),
        offset,
        detail: detail.into(),
    }
}

/// Parses a segment file's bytes.
///
/// `start_epoch` is the epoch the segment's name carries: the epoch the
/// session was at when the segment was started, which the first record must
/// continue from. `allow_torn_tail` is `true` only for the **newest**
/// segment — a crash can only tear the end of the log, so an earlier segment
/// that fails to parse is interior corruption no matter where it fails.
pub fn parse_segment(
    file: &str,
    bytes: &[u8],
    start_epoch: u64,
    allow_torn_tail: bool,
) -> Result<ParsedSegment, WalError> {
    let mut batches = Vec::new();
    let mut offset = 0usize;
    let mut epoch = start_epoch;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            return Ok(ParsedSegment {
                batches,
                valid_len: offset as u64,
                torn: false,
            });
        }
        // A tail failure is only tolerable where a tail can be: the end of
        // the newest segment.
        let torn = |detail: &str| -> Result<ParsedSegment, WalError> {
            if allow_torn_tail {
                Ok(ParsedSegment {
                    batches: batches.clone(),
                    valid_len: offset as u64,
                    torn: true,
                })
            } else {
                Err(corrupt(file, offset as u64, detail))
            }
        };
        if remaining < 8 {
            return torn("incomplete record header");
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
        let stored_crc =
            u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN || 8 + len as usize > remaining {
            // The declared payload runs past end-of-file (an absurd length
            // is the same condition: no file this size exists). Mid-file,
            // that leaves trailing bytes after the failure — corruption.
            if 8 + (len.min(MAX_RECORD_LEN) as usize) < remaining {
                return Err(corrupt(file, offset as u64, "bad record length"));
            }
            return torn("record payload extends past end of file");
        }
        let payload = &bytes[offset + 8..offset + 8 + len as usize];
        if crc32(payload) != stored_crc {
            if 8 + len as usize == remaining {
                // The checksum-invalid record is the very last thing in the
                // file: a torn final write.
                return torn("checksum mismatch on final record");
            }
            return Err(corrupt(file, offset as u64, "record checksum mismatch"));
        }
        // Checksummed bytes that fail to decode were corrupted before the
        // CRC was computed (or the CRC colluded — astronomically unlikely
        // from a torn write): report, never truncate.
        let mut reader = Reader::new(payload);
        let record_epoch = reader
            .u64()
            .map_err(|e| corrupt(file, offset as u64, e.to_string()))?;
        let count = reader
            .u32()
            .map_err(|e| corrupt(file, offset as u64, e.to_string()))?;
        let mut events = Vec::with_capacity((count as usize).min(payload.len()));
        for _ in 0..count {
            events.push(
                codec::decode_event(&mut reader)
                    .map_err(|e| corrupt(file, offset as u64, e.to_string()))?,
            );
        }
        if !reader.is_at_end() {
            return Err(corrupt(file, offset as u64, "trailing bytes in record"));
        }
        // The epoch chain: each batch advances the epoch by exactly its
        // event count. A record that breaks the chain was dropped,
        // duplicated, or reordered — never replay it.
        let expected = epoch
            .checked_add(events.len() as u64)
            .ok_or_else(|| corrupt(file, offset as u64, "epoch overflow"))?;
        if record_epoch != expected {
            return Err(corrupt(
                file,
                offset as u64,
                format!("epoch chain broken: record says {record_epoch}, expected {expected}"),
            ));
        }
        epoch = record_epoch;
        offset += 8 + len as usize;
        batches.push(Batch {
            epoch: record_epoch,
            events,
        });
    }
}

/// Encodes a checkpoint file: the complete fact set at `epoch`.
pub fn encode_checkpoint<'a>(epoch: u64, facts: impl Iterator<Item = &'a Fact>) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&epoch.to_le_bytes());
    payload.extend_from_slice(&0u64.to_le_bytes()); // count patched below
    let mut count = 0u64;
    for fact in facts {
        codec::encode_fact(fact, &mut payload);
        count += 1;
    }
    payload[8..16].copy_from_slice(&count.to_le_bytes());
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes and validates a checkpoint file, returning `(epoch, facts)`.
pub fn decode_checkpoint(file: &str, bytes: &[u8]) -> Result<(u64, Vec<Fact>), WalError> {
    if bytes.len() < 8 {
        return Err(corrupt(file, 0, "checkpoint shorter than its header"));
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != CHECKPOINT_MAGIC {
        return Err(corrupt(file, 0, "bad checkpoint magic"));
    }
    let stored_crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let payload = &bytes[8..];
    if crc32(payload) != stored_crc {
        return Err(corrupt(file, 4, "checkpoint checksum mismatch"));
    }
    let mut reader = Reader::new(payload);
    let epoch = reader.u64().map_err(|e| corrupt(file, 8, e.to_string()))?;
    let count = reader.u64().map_err(|e| corrupt(file, 8, e.to_string()))?;
    let mut facts = Vec::with_capacity((count as usize).min(payload.len()));
    for _ in 0..count {
        facts.push(
            codec::decode_fact(&mut reader)
                .map_err(|e| corrupt(file, 8 + reader.position() as u64, e.to_string()))?,
        );
    }
    if !reader.is_at_end() {
        return Err(corrupt(file, 8, "trailing bytes in checkpoint"));
    }
    Ok((epoch, facts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::fact;

    fn batch(epoch: u64, n: usize) -> (u64, Vec<DeltaEvent>) {
        let events = (0..n)
            .map(|i| DeltaEvent::insert(fact!("R", format!("k{epoch}-{i}"), 1)))
            .collect();
        (epoch, events)
    }

    fn log(batches: &[(u64, Vec<DeltaEvent>)]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for (epoch, events) in batches {
            bytes.extend_from_slice(&encode_record(*epoch, events));
        }
        bytes
    }

    #[test]
    fn clean_segments_roundtrip() {
        let batches = vec![batch(2, 2), batch(3, 1), batch(7, 4)];
        let bytes = log(&batches);
        let parsed = parse_segment("wal", &bytes, 0, true).unwrap();
        assert!(!parsed.torn);
        assert_eq!(parsed.valid_len, bytes.len() as u64);
        assert_eq!(parsed.batches.len(), 3);
        assert_eq!(parsed.batches[2].epoch, 7);
        assert_eq!(parsed.batches[2].events, batches[2].1);
    }

    #[test]
    fn every_truncation_of_the_tail_recovers_the_longest_valid_prefix() {
        let batches = vec![batch(1, 1), batch(3, 2), batch(4, 1)];
        let bytes = log(&batches);
        let ends: Vec<u64> = {
            // Record boundaries: prefix sums of record sizes.
            let mut ends = vec![0u64];
            let mut at = 0u64;
            for (epoch, events) in &batches {
                at += encode_record(*epoch, events).len() as u64;
                ends.push(at);
            }
            ends
        };
        for cut in 0..=bytes.len() {
            let parsed = parse_segment("wal", &bytes[..cut], 0, true)
                .unwrap_or_else(|e| panic!("cut {cut}: {e}"));
            // The valid prefix is the largest record boundary <= cut, and
            // exactly the batches before it survive.
            let expect_len = *ends.iter().rfind(|&&e| e <= cut as u64).unwrap();
            assert_eq!(parsed.valid_len, expect_len, "cut {cut}");
            assert_eq!(parsed.torn, expect_len != cut as u64, "cut {cut}");
            let expect_batches = ends.iter().filter(|&&e| e != 0 && e <= cut as u64).count();
            assert_eq!(parsed.batches.len(), expect_batches, "cut {cut}");
        }
    }

    #[test]
    fn torn_tail_is_corruption_in_a_non_final_segment() {
        let bytes = log(&[batch(1, 1), batch(2, 1)]);
        let cut = bytes.len() - 3;
        assert!(parse_segment("wal", &bytes[..cut], 0, true).is_ok());
        let err = parse_segment("wal", &bytes[..cut], 0, false).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn interior_bitflips_are_reported_not_truncated() {
        let batches = vec![batch(1, 1), batch(2, 1), batch(3, 1)];
        let bytes = log(&batches);
        // Flip one payload byte of the FIRST record: later records are
        // intact, so this is interior corruption even with tails allowed.
        let mut tampered = bytes.clone();
        tampered[10] ^= 0x40;
        let err = parse_segment("wal", &tampered, 0, true).unwrap_err();
        match err {
            WalError::Corrupt { offset, .. } => assert_eq!(offset, 0),
            other => panic!("expected Corrupt, got {other}"),
        }
        // Flip a byte of the LAST record: that is a tearable tail.
        let mut tampered = bytes.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0x01;
        let parsed = parse_segment("wal", &tampered, 0, true).unwrap();
        assert!(parsed.torn);
        assert_eq!(parsed.batches.len(), 2);
        // ... but still corruption for a non-final segment.
        assert!(parse_segment("wal", &tampered, 0, false).is_err());
    }

    #[test]
    fn epoch_chain_violations_are_corrupt() {
        // Duplicated record.
        let (epoch, events) = batch(1, 1);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_record(epoch, &events));
        bytes.extend_from_slice(&encode_record(epoch, &events));
        let err = parse_segment("wal", &bytes, 0, true).unwrap_err();
        assert!(err.to_string().contains("epoch chain"), "{err}");
        // Gap: a segment starting at 0 whose first record claims epoch 5.
        let bytes = log(&[batch(5, 1)]);
        assert!(parse_segment("wal", &bytes, 0, true).is_err());
        // The same record is fine when the segment starts at 4.
        assert!(parse_segment("wal", &bytes, 4, true).is_ok());
    }

    #[test]
    fn checkpoints_roundtrip_and_reject_corruption() {
        let facts = vec![fact!("R", "a", 1), fact!("S", "b", "c", 2)];
        let bytes = encode_checkpoint(9, facts.iter());
        let (epoch, decoded) = decode_checkpoint("ck", &bytes).unwrap();
        assert_eq!(epoch, 9);
        assert_eq!(decoded, facts);
        // Any single-byte flip is caught (magic, crc, or payload).
        for i in 0..bytes.len() {
            let mut tampered = bytes.clone();
            tampered[i] ^= 0x10;
            assert!(decode_checkpoint("ck", &tampered).is_err(), "flip at {i}");
        }
        // Truncations are caught.
        for cut in 0..bytes.len() {
            assert!(decode_checkpoint("ck", &bytes[..cut]).is_err(), "cut {cut}");
        }
        // Empty instance checkpoints are fine.
        let empty = encode_checkpoint(0, [].iter());
        assert_eq!(decode_checkpoint("ck", &empty).unwrap(), (0, Vec::new()));
    }
}
