//! Classification audit: run the separation decision (Theorem 1.1 /
//! Theorem 7.11) on a suite of aggregation queries and report, for each one,
//! whether its greatest-lower-bound and least-upper-bound consistent answers
//! are expressible in AGGR[FOL], together with the complexity of the
//! underlying CERTAINTY problem and Caggforest membership.
//!
//! Run with: `cargo run --example classification_audit`

use rcqa::core::classify;
use rcqa::core::Expressibility;
use rcqa::data::{Schema, Signature};
use rcqa::query::parse_agg_query;

fn short(e: &Expressibility) -> &'static str {
    match e {
        Expressibility::Rewritable { .. } => "rewritable",
        Expressibility::NotRewritable { .. } => "no rewriting",
        Expressibility::Open { .. } => "open",
    }
}

fn main() {
    let schema = Schema::new()
        .with_relation("R", Signature::new(2, 1, [1]).unwrap())
        .with_relation("S", Signature::new(4, 2, [3]).unwrap())
        .with_relation("S1", Signature::new(2, 1, []).unwrap())
        .with_relation("S2", Signature::new(2, 1, []).unwrap())
        .with_relation("T", Signature::new(3, 2, [2]).unwrap())
        .with_relation("U", Signature::new(2, 1, [1]).unwrap());

    let suite = [
        // Theorem 6.1 cases.
        "SUM(r) <- R(x, r), S(x, z, 'd', r)",
        "COUNT(*) <- R(x, y), S(x, z, 'd', r)",
        "MAX(r) <- S(y, z, 'd', r)",
        // Theorem 7.10 / 7.11 cases.
        "MIN(r) <- R(x, r), S(x, z, 'd', r)",
        // A Caggforest query (ConQuer could also handle it over Q>=0).
        "SUM(r) <- S1(x, 'c1'), S2(y, 'c2'), T(x, y, r)",
        // Cyclic attack graph: Theorem 5.5 applies.
        "SUM(y) <- R(x, y), U(y, x)",
        // Aggregates outside the positive results (Section 7 / Section 8).
        "AVG(r) <- R(x, r), S(x, z, 'd', r)",
        "PRODUCT(r) <- R(x, r)",
        "COUNT-DISTINCT(r) <- R(x, r)",
        "SUM-DISTINCT(r) <- R(x, r)",
    ];

    println!(
        "{:<48} {:>8} {:>16} {:>13} {:>13} {:>11}",
        "query", "acyclic", "CERTAINTY", "GLB-CQA", "LUB-CQA", "Caggforest"
    );
    println!("{}", "-".repeat(115));
    for text in suite {
        let query = parse_agg_query(text).unwrap();
        let c = classify(&query, &schema).unwrap();
        println!(
            "{:<48} {:>8} {:>16} {:>13} {:>13} {:>11}",
            text,
            c.attack_graph_acyclic,
            c.certainty.to_string(),
            short(&c.glb),
            short(&c.lub),
            c.in_caggforest
        );
    }

    println!("\nJustifications for the first query:");
    let c = classify(&parse_agg_query(suite[0]).unwrap(), &schema).unwrap();
    println!("  GLB: {}", c.glb);
    println!("  LUB: {}", c.lub);
}
