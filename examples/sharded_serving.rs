//! Sharded serving: partition a serving session across N shards by level-0
//! block key, fan grouped queries out in parallel, and coalesce concurrent
//! writers into group commits — with every answer byte-identical to one
//! unsharded session over the same facts.
//!
//! Run with: `cargo run --example sharded_serving`

use rcqa::data::fact;
use rcqa::query::{Catalog, TableDef};
use rcqa::session::{Session, ShardedSession};
use std::sync::Arc;

fn main() {
    let catalog = Catalog::new().with_table(
        TableDef::new("Stock")
            .key_column("Product")
            .key_column("Town")
            .numeric_column("Qty"),
    );

    // Four shards behind one front-end. Facts route by a stable hash of
    // their block key (Product, Town), so each block — the unit the paper's
    // repairs choose from — lives on exactly one shard.
    let session = Arc::new(ShardedSession::new(catalog.clone(), 4));

    // Concurrent writers: the per-shard commit coordinator coalesces
    // overlapping inserts into one batch and one WAL append (group commit).
    std::thread::scope(|scope| {
        for w in 0..4 {
            let session = Arc::clone(&session);
            scope.spawn(move || {
                for p in 0..8 {
                    let product = format!("Part-{w}{p}");
                    session
                        .insert(fact!("Stock", product.clone(), "Boston", 10 + w * 8 + p))
                        .expect("insert");
                    if p % 3 == 0 {
                        // A conflicting second quantity makes the block
                        // inconsistent: answers become [glb, lub] intervals.
                        session
                            .insert(fact!("Stock", product, "Boston", 50 + w))
                            .expect("insert");
                    }
                }
            });
        }
    });

    // Three uncontested bestsellers: their blocks are consistent and beat
    // every interval above, so the *certain* top-k below is non-empty.
    for (i, product) in ["Atlas", "Beacon", "Comet"].iter().enumerate() {
        session
            .insert(fact!("Stock", *product, "Boston", 900 + i as i32))
            .expect("insert");
    }

    // A full-key GROUP BY fans out: every shard answers over its own blocks
    // and the per-shard rows merge deterministically by group key. The
    // certain top-5 keeps only groups in the top 5 of EVERY repair — the
    // three bestsellers qualify; the conflicted blocks' overlapping
    // intervals leave ranks 4 and 5 uncertain, so they are (correctly)
    // dropped.
    let fanout = "SELECT S.Product, S.Town, MAX(S.Qty) FROM Stock AS S \
                  GROUP BY S.Product, S.Town ORDER BY MAX(S.Qty) DESC LIMIT 5";
    println!("{}", session.explain(fanout).expect("explain"));
    let top5 = session.execute(fanout).expect("fan-out query");
    println!("{}", top5.to_table());

    // A subset-of-key GROUP BY scatters each group's blocks across shards,
    // so it routes to the cross-shard combine — still byte-identical.
    let combine = "SELECT S.Town, SUM(S.Qty) FROM Stock AS S GROUP BY S.Town";
    println!("{}", session.explain(combine).expect("explain"));
    println!(
        "{}",
        session.execute(combine).expect("combine query").to_table()
    );

    // The sharding is invisible: an unsharded session over the same facts
    // answers identically, row for row.
    let unsharded = Session::with_instance(
        catalog,
        session.database().expect("union instance").as_ref().clone(),
    );
    assert_eq!(
        unsharded.execute(fanout).expect("unsharded").rows,
        top5.rows,
        "sharded answers must be byte-identical to unsharded"
    );

    let stats = session.stats();
    println!(
        "shards: {} | epoch frontier: {:?} (sum = {})",
        session.shard_count(),
        stats.epoch_frontier,
        session.epoch()
    );
    println!(
        "routes: fanout={} designated={} combine={} | group commits: {} batches / {} events",
        stats.fanout_queries,
        stats.designated_queries,
        stats.combine_queries,
        stats.group_commits,
        stats.group_commit_events
    );
}
