//! Generates a synthetic inconsistent database with the workload generator,
//! answers a SUM query with the rewriting-based engine, and cross-checks the
//! result against the MaxSAT baseline and exact repair enumeration.
//!
//! Run with: `cargo run --example synthetic_workload --release`

use rcqa::baselines::maxsat_glb;
use rcqa::core::engine::RangeCqa;
use rcqa::core::exact::exact_bounds;
use rcqa::core::prepared::PreparedAggQuery;
use rcqa::gen::JoinWorkload;
use std::time::Instant;

fn main() {
    let cfg = JoinWorkload {
        r_blocks: 25,
        y_domain: 12,
        s_blocks_per_y: 2,
        inconsistency_ratio: 0.1,
        block_size: 2,
        max_value: 100,
        seed: 2024,
    };
    let db = cfg.generate();
    let query = cfg.sum_query();
    println!("workload : {query}");
    println!(
        "database : {} facts, {} inconsistent blocks, ~2^{} repairs",
        db.len(),
        db.inconsistent_block_count(),
        db.inconsistent_block_count()
    );

    let engine = RangeCqa::new(&query, &cfg.schema()).unwrap();
    let prepared = PreparedAggQuery::new(&query, &cfg.schema()).unwrap();

    let t = Instant::now();
    let glb = engine.glb(&db).unwrap()[0].1;
    println!(
        "\nrewriting-based engine : glb = {} in {:.2} ms ({:?})",
        glb.value.unwrap(),
        t.elapsed().as_secs_f64() * 1e3,
        glb.method
    );

    let t = Instant::now();
    let maxsat = maxsat_glb(&prepared, &db).unwrap();
    println!(
        "MaxSAT baseline        : glb = {} in {:.2} ms ({} vars, {} hard, {} soft)",
        maxsat.glb.unwrap(),
        t.elapsed().as_secs_f64() * 1e3,
        maxsat.variables,
        maxsat.hard_clauses,
        maxsat.soft_clauses
    );

    let t = Instant::now();
    let exact = exact_bounds(&prepared, &db, 1 << 24).unwrap();
    println!(
        "exact enumeration      : glb = {} in {:.2} ms ({} repairs)",
        exact.glb.unwrap(),
        t.elapsed().as_secs_f64() * 1e3,
        exact.repairs
    );

    assert_eq!(glb.value, maxsat.glb);
    assert_eq!(glb.value, exact.glb);
    println!("\nall three methods agree; the rewriting is polynomial in the data,");
    println!("the baselines are exponential in the number of inconsistent blocks.");
}
