//! Reproduces the Section 7.3 refutation: the SUM lower-bound rewriting for
//! Fuxman's class Caggforest is unsound once a numeric column may contain
//! `-1`, whereas the `rcqa` engine detects the unconstrained domain and falls
//! back to an exact method.
//!
//! Run with: `cargo run --example fuxman_refutation`

use rcqa::baselines::fuxman_sum_glb;
use rcqa::core::engine::RangeCqa;
use rcqa::core::exact::exact_bounds;
use rcqa::core::prepared::PreparedAggQuery;
use rcqa::data::NumericDomain;
use rcqa::gen::fuxman_counterexample;

fn main() {
    let (db, query) = fuxman_counterexample();
    println!("query: {query}");
    println!("database ({} facts):", db.len());
    for fact in db.facts() {
        println!("  {fact}");
    }

    let prepared = PreparedAggQuery::new(&query, db.schema()).unwrap();
    let classification =
        rcqa::core::classify_with_domain(&query, db.schema(), NumericDomain::Unconstrained)
            .unwrap();
    println!("\nin Caggforest       : {}", classification.in_caggforest);
    println!("monotone over N∪{{-1}} : {}", classification.monotone);

    // Ground truth by enumerating the two repairs.
    let exact = exact_bounds(&prepared, &db, 1 << 20).unwrap();
    println!(
        "\nexact glb (all {} repairs enumerated): {}",
        exact.repairs,
        exact.glb.unwrap()
    );

    // The Fuxman/ConQuer-style lower-bound rewriting drops the uncertain
    // (negative) contribution and reports 0 — no longer a lower bound.
    let fux = fuxman_sum_glb(&prepared, &db).unwrap();
    println!(
        "Fuxman-style bound                   : {} (counted {} blocks, dropped {})",
        fux.glb, fux.counted_blocks, fux.dropped_blocks
    );

    // The rcqa engine notices the unconstrained numeric domain and uses the
    // exact fallback instead of the (now unsound) SUM rewriting.
    let engine = RangeCqa::new(&query, db.schema()).unwrap();
    let answer = engine.glb(&db).unwrap()[0].1;
    println!(
        "rcqa engine                          : {} (method {:?})",
        answer.value.unwrap(),
        answer.method
    );

    assert!(
        Some(fux.glb) > exact.glb,
        "the refutation should be visible"
    );
    assert_eq!(answer.value, exact.glb);
    println!("\nFuxman's reported bound exceeds the true greatest lower bound:");
    println!("the Caggforest claim of [Fuxman 2007] fails for negative numbers,");
    println!("exactly as Theorem 7.9 of the paper states.");
}
