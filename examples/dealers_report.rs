//! A GROUP BY report through the SQL front-end (Section 1 / 6.2 of the
//! paper): for every dealer, the range of possible total stock in their town
//! of operation, across all repairs.
//!
//! Run with: `cargo run --example dealers_report`

use rcqa::core::engine::RangeCqa;
use rcqa::data::{fact, DatabaseInstance};
use rcqa::query::{parse_sql, Catalog, TableDef};

fn main() {
    // Named-column catalog for the SQL front-end.
    let catalog = Catalog::new()
        .with_table(TableDef::new("Dealers").key_column("Name").column("Town"))
        .with_table(
            TableDef::new("Stock")
                .key_column("Product")
                .key_column("Town")
                .numeric_column("Qty"),
        );
    let schema = catalog.schema();

    let mut db = DatabaseInstance::new(schema.clone());
    db.insert_all([
        fact!("Dealers", "Smith", "Boston"),
        fact!("Dealers", "Smith", "New York"),
        fact!("Dealers", "James", "Boston"),
        fact!("Stock", "Tesla X", "Boston", 35),
        fact!("Stock", "Tesla X", "Boston", 40),
        fact!("Stock", "Tesla Y", "Boston", 35),
        fact!("Stock", "Tesla Y", "New York", 95),
        fact!("Stock", "Tesla Y", "New York", 96),
    ])
    .unwrap();

    // The SQL query from the introduction of the paper.
    let sql = "SELECT D.Name, SUM(S.Qty) \
               FROM Dealers AS D, Stock AS S \
               WHERE D.Town = S.Town \
               GROUP BY D.Name";
    println!("SQL      : {sql}");
    let translated = parse_sql(sql, &catalog).unwrap();
    println!("AGGR[sjfBCQ] : {}", translated.query);

    let engine = RangeCqa::new(&translated.query, &schema).unwrap();
    let ranges = engine.range(&db).unwrap();

    println!("\n{:<12} {:>10} {:>10}", "Name", "glb(SUM)", "lub(SUM)");
    for row in &ranges {
        let show = |v: Option<rcqa::data::Rational>| {
            v.map(|r| r.to_string()).unwrap_or_else(|| "⊥".to_string())
        };
        println!(
            "{:<12} {:>10} {:>10}",
            row.key[0].to_string(),
            show(row.glb.unwrap().value),
            show(row.lub.unwrap().value)
        );
    }
    println!("\nEvery value v in [glb, lub] is attained by SUM on some repair;");
    println!("values outside the interval are impossible under range semantics.");
}
