//! A GROUP BY report through the SQL session facade (Section 1 / 6.2 of the
//! paper): for every dealer, the range of possible total stock in their town
//! of operation, across all repairs.
//!
//! Run with: `cargo run --example dealers_report`

use rcqa::data::fact;
use rcqa::query::{Catalog, TableDef};
use rcqa::session::Session;

fn main() {
    // Named-column catalog for the SQL front-end.
    let catalog = Catalog::new()
        .with_table(TableDef::new("Dealers").key_column("Name").column("Town"))
        .with_table(
            TableDef::new("Stock")
                .key_column("Product")
                .key_column("Town")
                .numeric_column("Qty"),
        );

    let session = Session::new(catalog);
    session
        .insert_all([
            fact!("Dealers", "Smith", "Boston"),
            fact!("Dealers", "Smith", "New York"),
            fact!("Dealers", "James", "Boston"),
            fact!("Stock", "Tesla X", "Boston", 35),
            fact!("Stock", "Tesla X", "Boston", 40),
            fact!("Stock", "Tesla Y", "Boston", 35),
            fact!("Stock", "Tesla Y", "New York", 95),
            fact!("Stock", "Tesla Y", "New York", 96),
        ])
        .unwrap();

    // The SQL query from the introduction of the paper.
    let sql = "SELECT D.Name, SUM(S.Qty) \
               FROM Dealers AS D, Stock AS S \
               WHERE D.Town = S.Town \
               GROUP BY D.Name";
    println!("SQL          : {sql}");

    // The physical plan the session executes (plan-IR lowering).
    println!("\nEXPLAIN:\n{}", session.explain(sql).unwrap());

    let outcome = session.execute(sql).unwrap();
    println!("AGGR[sjfBCQ] : {}", outcome.query);
    println!(
        "classified   : acyclic attack graph = {}",
        outcome.classification.attack_graph_acyclic
    );
    println!("\n{}", outcome.to_table());
    println!("Every value v in [glb, lub] is attained by SUM on some repair;");
    println!("values outside the interval are impossible under range semantics.");
}
