//! Quickstart: range-consistent answers over an inconsistent database.
//!
//! Builds the paper's Fig. 1 instance, runs the introduction query
//! `SUM(y) <- Dealers('Smith', t), Stock(p, t, y)` and prints the
//! classification, the greatest lower bound and the least upper bound.
//!
//! Run with: `cargo run --example quickstart`

use rcqa::core::engine::RangeCqa;
use rcqa::core::rewrite::BoundKind;
use rcqa::data::{fact, DatabaseInstance, NumericDomain, Schema, Signature};
use rcqa::query::parse_agg_query;

fn main() {
    // Schema: Dealers(Name, Town) with key Name; Stock(Product, Town, Qty)
    // with key (Product, Town) and numeric Qty.
    let schema = Schema::new()
        .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
        .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());

    // The inconsistent instance of Fig. 1 (Smith's town and two stock levels
    // violate the primary keys).
    let mut db = DatabaseInstance::new(schema.clone());
    db.insert_all([
        fact!("Dealers", "Smith", "Boston"),
        fact!("Dealers", "Smith", "New York"),
        fact!("Dealers", "James", "Boston"),
        fact!("Stock", "Tesla X", "Boston", 35),
        fact!("Stock", "Tesla X", "Boston", 40),
        fact!("Stock", "Tesla Y", "Boston", 35),
        fact!("Stock", "Tesla Y", "New York", 95),
        fact!("Stock", "Tesla Y", "New York", 96),
    ])
    .unwrap();
    println!(
        "database: {} facts, {} key-violating blocks, {} repairs",
        db.len(),
        db.inconsistent_block_count(),
        db.repair_count().unwrap()
    );

    // The query from the introduction of the paper.
    let query = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
    println!("query   : {query}");

    let engine = RangeCqa::new(&query, &schema).unwrap();

    // The separation theorem: is GLB-CQA expressible in AGGR[FOL]?
    let classification = engine.classification(NumericDomain::NonNegative);
    println!("GLB     : {}", classification.glb);
    println!("LUB     : {}", classification.lub);

    // The symbolic rewriting the engine evaluates.
    if let Some(rewriting) = engine.rewriting(BoundKind::Glb) {
        println!("certainty rewriting (⊥ test): {}", rewriting.certainty);
    }

    // And the actual range-consistent answers.
    let glb = engine.glb(&db).unwrap();
    let lub = engine.lub(&db).unwrap();
    let show = |v: Option<rcqa::data::Rational>| {
        v.map(|r| r.to_string()).unwrap_or_else(|| "⊥".to_string())
    };
    println!(
        "range-consistent answer: [{}, {}]  (glb via {:?}, lub via {:?})",
        show(glb[0].1.value),
        show(lub[0].1.value),
        glb[0].1.method,
        lub[0].1.method
    );
    assert_eq!(glb[0].1.value, Some(rcqa::data::rat(70)));
}
