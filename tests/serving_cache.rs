//! Serving-session cache invariants asserted via the process-wide
//! [`DbIndex::build_count`] counter.
//!
//! These tests live in their own integration-test binary (one process) so
//! that no other test builds indexes concurrently while a counting section
//! runs; within the binary the counting tests serialise on a local mutex
//! (the same discipline as `crates/core/tests/build_invariant.rs`).

use rcqa::core::engine::EngineOptions;
use rcqa::core::index::DbIndex;
use rcqa::data::fact;
use rcqa::gen::JoinWorkload;
use rcqa::query::{Catalog, TableDef};
use rcqa::session::Session;
use std::sync::Mutex;

/// Serialises the counting sections of this binary's tests.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

/// The catalog lowering of [`JoinWorkload`]'s schema: `R(X, Y)` with key
/// `X`, `S(Y, Z, Qty)` with key `(Y, Z)` and numeric `Qty`.
fn rs_catalog() -> Catalog {
    Catalog::new()
        .with_table(TableDef::new("R").key_column("X").column("Y"))
        .with_table(
            TableDef::new("S")
                .key_column("Y")
                .key_column("Z")
                .numeric_column("Qty"),
        )
}

fn workload() -> JoinWorkload {
    JoinWorkload {
        r_blocks: 20,
        y_domain: 10,
        s_blocks_per_y: 2,
        inconsistency_ratio: 0.25,
        block_size: 2,
        max_value: 60,
        seed: 7,
    }
}

/// MAX is rewriting-backed on both bounds, so the whole exchange stays on
/// the one-pass pipeline (the exact fallback would enumerate repairs and
/// index each of them by design).
const GROUPED_MAX: &str = "SELECT R.X, MAX(S.Qty) FROM R, S WHERE R.Y = S.Y GROUP BY R.X";

#[test]
fn n_repeated_executes_build_exactly_one_index() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    for threads in [1usize, 4] {
        let session = Session::with_instance(rs_catalog(), workload().generate()).with_options(
            EngineOptions {
                threads,
                ..EngineOptions::default()
            },
        );
        let before = DbIndex::build_count();
        let first = session.execute(GROUPED_MAX).unwrap();
        assert_eq!(first.rows.len(), 20);
        for _ in 0..9 {
            let again = session.execute(GROUPED_MAX).unwrap();
            assert_eq!(again.rows, first.rows);
        }
        assert_eq!(
            DbIndex::build_count() - before,
            1,
            "{threads} threads: 10 executes must build exactly one index"
        );
        let stats = session.stats();
        assert_eq!(stats.index_builds, 1);
        assert_eq!(stats.result_hits, 9);
        assert_eq!(stats.statements_prepared, 1);
        assert_eq!(stats.statement_hits, 9);
    }
}

#[test]
fn mutations_maintain_the_index_without_rebuilding() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let session = Session::with_instance(rs_catalog(), workload().generate());
    let before = DbIndex::build_count();
    session.execute(GROUPED_MAX).unwrap();
    assert_eq!(DbIndex::build_count() - before, 1);

    // Insert into a fresh group, insert into an existing group's relation,
    // and delete again: every step is served by delta replay, never a
    // rebuild.
    let after_build = DbIndex::build_count();
    session.insert(fact!("R", "xnew", "y3")).unwrap();
    let grown = session.execute(GROUPED_MAX).unwrap();
    assert_eq!(grown.rows.len(), 21);
    assert!(session.delete(&fact!("R", "xnew", "y3")).unwrap());
    let shrunk = session.execute(GROUPED_MAX).unwrap();
    assert_eq!(shrunk.rows.len(), 20);
    assert_eq!(
        DbIndex::build_count() - after_build,
        0,
        "mutations must be applied as deltas, not rebuilds"
    );
    let stats = session.stats();
    assert_eq!(stats.index_builds, 1);
    assert_eq!(stats.partial_recomputes, 2, "R deltas localise to groups");
    assert_eq!(stats.deltas_applied, 2);
}

#[test]
fn concurrent_clients_share_exactly_one_index_build() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let session = Session::with_instance(rs_catalog(), workload().generate());
    let expected = session.execute(GROUPED_MAX).unwrap().rows;
    // Evict the result cache's current epoch? No — share a *fresh* session so
    // the very first builds race: 4 clients starting cold must still build
    // exactly one index (the snapshot's OnceLock serialises initialisers).
    let fresh = Session::with_instance(rs_catalog(), workload().generate());
    let before = DbIndex::build_count();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let fresh = &fresh;
            let expected = &expected;
            scope.spawn(move || {
                for _ in 0..5 {
                    assert_eq!(&fresh.execute(GROUPED_MAX).unwrap().rows, expected);
                }
            });
        }
    });
    assert_eq!(
        DbIndex::build_count() - before,
        1,
        "4 racing cold clients must share one index build"
    );
    let stats = fresh.stats();
    assert_eq!(stats.index_builds, 1);
    assert_eq!(stats.statements_prepared, 1, "racing preparations dedupe");
}

/// Random insert/delete interleavings against the support-tracked
/// maintenance layer: after EVERY commit, each statement's warm answer must
/// be byte-identical to a cold session over the same instance at 1 and 4
/// executor threads AND to a session crash-recovered from a copy of the
/// write-ahead log. The statement mix covers the three post-processing
/// shapes the old locality certificate refused to patch: HAVING over a
/// non-key group key, certain top-k, and a residual comparison predicate
/// (exhaustive support — the honest always-full-recompute path).
mod random_interleavings {
    use super::*;
    use proptest::prelude::*;
    use rcqa::data::{Fact, Value};
    use rcqa::session::{SessionOptions, SyncPolicy, WalOptions};
    use rcqa::wal::{MemStorage, WalStorage};

    const STATEMENTS: &[&str] = &[
        // Non-key GROUP BY key + HAVING: patched via support patterns.
        "SELECT R.Y, MAX(S.Qty) FROM R, S WHERE R.Y = S.Y GROUP BY R.Y \
         HAVING MAX(S.Qty) > 20",
        // Certain top-k: selection reuse when pairwise precedence holds.
        "SELECT R.X, MAX(S.Qty) FROM R, S WHERE R.Y = S.Y GROUP BY R.X \
         ORDER BY MAX(S.Qty) DESC LIMIT 3",
        // Residual predicate (Qty is at no key position and not free):
        // exhaustive repair enumeration, hence exhaustive support.
        "SELECT R.X, MIN(S.Qty) FROM R, S WHERE R.Y = S.Y AND S.Qty > 10 \
         GROUP BY R.X",
    ];

    /// Small value domains so draws collide: inserts become duplicates,
    /// deletes hit present facts, and S keys accumulate conflicting Qty
    /// values (two per key, keeping exact enumeration's repair count small).
    fn pool_fact(draw: u64) -> Fact {
        if draw.is_multiple_of(2) {
            let draw = draw / 2;
            fact!(
                "R",
                format!("x{}", draw % 4),
                format!("y{}", (draw / 4) % 3)
            )
        } else {
            let draw = draw / 2;
            Fact::new(
                "S",
                [
                    Value::text(format!("y{}", draw % 3)),
                    Value::text(format!("z{}", (draw / 3) % 2)),
                    Value::int(5 + 20 * ((draw / 6) % 2) as i64),
                ],
            )
        }
    }

    /// An isolated deep copy of the log bytes, so recovery cannot disturb
    /// the live session's storage (the in-memory analogue of imaging the
    /// disk before remounting it elsewhere).
    fn image(mem: &MemStorage) -> MemStorage {
        let mut src = mem.handle();
        let copy = MemStorage::new();
        for name in src.list().expect("list in-memory files") {
            copy.set_file(&name, src.file(&name).unwrap_or_default());
        }
        copy
    }

    fn wal_options() -> WalOptions {
        WalOptions {
            sync: SyncPolicy::Never,
            checkpoint_every: 4,
            ..WalOptions::default()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn every_commit_agrees_with_cold_and_crash_recovered_sessions(
            ops in proptest::collection::vec((0u8..3, 0u64..1_000_000), 2..10),
        ) {
            let mem = MemStorage::new();
            let warm =
                Session::open_storage(rs_catalog(), Box::new(mem.handle()), wal_options())
                    .expect("open")
                    .with_session_options(SessionOptions {
                        dirty_log_cap: 8,
                        ..Default::default()
                    });
            let mut effective = 0u64;
            for (op, draw) in ops {
                let f = pool_fact(draw);
                let changed = match op {
                    0 | 1 => warm.insert(f).expect("insert conforms"),
                    _ => warm.delete(&f).expect("delete"),
                };
                if changed {
                    effective += 1;
                }
                for sql in STATEMENTS {
                    let got = warm.execute(sql).expect("warm execute");
                    for threads in [1usize, 4] {
                        let cold = Session::with_instance(
                            rs_catalog(),
                            warm.database().clone(),
                        )
                        .with_options(EngineOptions {
                            threads,
                            ..EngineOptions::default()
                        });
                        let want = cold.execute(sql).expect("cold execute");
                        prop_assert_eq!(&want.rows, &got.rows, "cold@{}T: {}", threads, sql);
                        prop_assert_eq!(
                            &want.more_aggregates, &got.more_aggregates,
                            "cold@{}T extra aggregates: {}", threads, sql
                        );
                        prop_assert_eq!(
                            &want.having, &got.having,
                            "cold@{}T having statuses: {}", threads, sql
                        );
                    }
                }
                let recovered = Session::open_storage(
                    rs_catalog(),
                    Box::new(image(&mem)),
                    wal_options(),
                )
                .expect("recover from a clean log image");
                prop_assert_eq!(recovered.epoch(), warm.epoch());
                for sql in STATEMENTS {
                    prop_assert_eq!(
                        &recovered.execute(sql).expect("recovered execute").rows,
                        &warm.execute(sql).expect("warm re-execute").rows,
                        "crash-recovered session differs: {}", sql
                    );
                }
            }
            // The exhaustive-support statement full-recomputes on every
            // effective commit past the first answered one; the counters
            // must have recorded honest misses, never a bogus patch of an
            // exhaustive plan.
            if effective >= 2 {
                prop_assert!(warm.stats().support_misses > 0);
            }
        }
    }
}

#[test]
fn warm_answers_equal_cold_sessions_at_every_thread_count() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let db = workload().generate();
    let warm = Session::with_instance(rs_catalog(), db);
    // Warm the caches, mutate through the delta path, and query again.
    warm.execute(GROUPED_MAX).unwrap();
    warm.insert(fact!("R", "xnew", "y1")).unwrap();
    warm.insert(fact!("S", "y1", "znew", 999)).unwrap();
    assert!(
        warm.delete(&fact!("R", "x3", "y8")).unwrap()
            || !warm.database().contains(&fact!("R", "x3", "y8"))
    );
    let warm_rows = warm.execute(GROUPED_MAX).unwrap().rows;

    // Cold sessions over the final instance must agree exactly, sequentially
    // and in parallel.
    for threads in [1usize, 2, 4, 8] {
        let cold = Session::with_instance(rs_catalog(), warm.database().clone()).with_options(
            EngineOptions {
                threads,
                ..EngineOptions::default()
            },
        );
        assert_eq!(
            cold.execute(GROUPED_MAX).unwrap().rows,
            warm_rows,
            "cold@{threads}T differs from the warm session"
        );
    }
}
