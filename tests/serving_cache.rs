//! Serving-session cache invariants asserted via the process-wide
//! [`DbIndex::build_count`] counter.
//!
//! These tests live in their own integration-test binary (one process) so
//! that no other test builds indexes concurrently while a counting section
//! runs; within the binary the counting tests serialise on a local mutex
//! (the same discipline as `crates/core/tests/build_invariant.rs`).

use rcqa::core::engine::EngineOptions;
use rcqa::core::index::DbIndex;
use rcqa::data::fact;
use rcqa::gen::JoinWorkload;
use rcqa::query::{Catalog, TableDef};
use rcqa::session::Session;
use std::sync::Mutex;

/// Serialises the counting sections of this binary's tests.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

/// The catalog lowering of [`JoinWorkload`]'s schema: `R(X, Y)` with key
/// `X`, `S(Y, Z, Qty)` with key `(Y, Z)` and numeric `Qty`.
fn rs_catalog() -> Catalog {
    Catalog::new()
        .with_table(TableDef::new("R").key_column("X").column("Y"))
        .with_table(
            TableDef::new("S")
                .key_column("Y")
                .key_column("Z")
                .numeric_column("Qty"),
        )
}

fn workload() -> JoinWorkload {
    JoinWorkload {
        r_blocks: 20,
        y_domain: 10,
        s_blocks_per_y: 2,
        inconsistency_ratio: 0.25,
        block_size: 2,
        max_value: 60,
        seed: 7,
    }
}

/// MAX is rewriting-backed on both bounds, so the whole exchange stays on
/// the one-pass pipeline (the exact fallback would enumerate repairs and
/// index each of them by design).
const GROUPED_MAX: &str = "SELECT R.X, MAX(S.Qty) FROM R, S WHERE R.Y = S.Y GROUP BY R.X";

#[test]
fn n_repeated_executes_build_exactly_one_index() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    for threads in [1usize, 4] {
        let session = Session::with_instance(rs_catalog(), workload().generate()).with_options(
            EngineOptions {
                threads,
                ..EngineOptions::default()
            },
        );
        let before = DbIndex::build_count();
        let first = session.execute(GROUPED_MAX).unwrap();
        assert_eq!(first.rows.len(), 20);
        for _ in 0..9 {
            let again = session.execute(GROUPED_MAX).unwrap();
            assert_eq!(again.rows, first.rows);
        }
        assert_eq!(
            DbIndex::build_count() - before,
            1,
            "{threads} threads: 10 executes must build exactly one index"
        );
        let stats = session.stats();
        assert_eq!(stats.index_builds, 1);
        assert_eq!(stats.result_hits, 9);
        assert_eq!(stats.statements_prepared, 1);
        assert_eq!(stats.statement_hits, 9);
    }
}

#[test]
fn mutations_maintain_the_index_without_rebuilding() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let session = Session::with_instance(rs_catalog(), workload().generate());
    let before = DbIndex::build_count();
    session.execute(GROUPED_MAX).unwrap();
    assert_eq!(DbIndex::build_count() - before, 1);

    // Insert into a fresh group, insert into an existing group's relation,
    // and delete again: every step is served by delta replay, never a
    // rebuild.
    let after_build = DbIndex::build_count();
    session.insert(fact!("R", "xnew", "y3")).unwrap();
    let grown = session.execute(GROUPED_MAX).unwrap();
    assert_eq!(grown.rows.len(), 21);
    assert!(session.delete(&fact!("R", "xnew", "y3")).unwrap());
    let shrunk = session.execute(GROUPED_MAX).unwrap();
    assert_eq!(shrunk.rows.len(), 20);
    assert_eq!(
        DbIndex::build_count() - after_build,
        0,
        "mutations must be applied as deltas, not rebuilds"
    );
    let stats = session.stats();
    assert_eq!(stats.index_builds, 1);
    assert_eq!(stats.partial_recomputes, 2, "R deltas localise to groups");
    assert_eq!(stats.deltas_applied, 2);
}

#[test]
fn concurrent_clients_share_exactly_one_index_build() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let session = Session::with_instance(rs_catalog(), workload().generate());
    let expected = session.execute(GROUPED_MAX).unwrap().rows;
    // Evict the result cache's current epoch? No — share a *fresh* session so
    // the very first builds race: 4 clients starting cold must still build
    // exactly one index (the snapshot's OnceLock serialises initialisers).
    let fresh = Session::with_instance(rs_catalog(), workload().generate());
    let before = DbIndex::build_count();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let fresh = &fresh;
            let expected = &expected;
            scope.spawn(move || {
                for _ in 0..5 {
                    assert_eq!(&fresh.execute(GROUPED_MAX).unwrap().rows, expected);
                }
            });
        }
    });
    assert_eq!(
        DbIndex::build_count() - before,
        1,
        "4 racing cold clients must share one index build"
    );
    let stats = fresh.stats();
    assert_eq!(stats.index_builds, 1);
    assert_eq!(stats.statements_prepared, 1, "racing preparations dedupe");
}

#[test]
fn warm_answers_equal_cold_sessions_at_every_thread_count() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let db = workload().generate();
    let warm = Session::with_instance(rs_catalog(), db);
    // Warm the caches, mutate through the delta path, and query again.
    warm.execute(GROUPED_MAX).unwrap();
    warm.insert(fact!("R", "xnew", "y1")).unwrap();
    warm.insert(fact!("S", "y1", "znew", 999)).unwrap();
    assert!(
        warm.delete(&fact!("R", "x3", "y8")).unwrap()
            || !warm.database().contains(&fact!("R", "x3", "y8"))
    );
    let warm_rows = warm.execute(GROUPED_MAX).unwrap().rows;

    // Cold sessions over the final instance must agree exactly, sequentially
    // and in parallel.
    for threads in [1usize, 2, 4, 8] {
        let cold = Session::with_instance(rs_catalog(), warm.database().clone()).with_options(
            EngineOptions {
                threads,
                ..EngineOptions::default()
            },
        );
        assert_eq!(
            cold.execute(GROUPED_MAX).unwrap().rows,
            warm_rows,
            "cold@{threads}T differs from the warm session"
        );
    }
}
