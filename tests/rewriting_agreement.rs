//! Generator-driven agreement tests: on random small inconsistent instances
//! from `rcqa-gen`, every (aggregate, bound) pair with a known AGGR\[FOL\]
//! rewriting must (a) actually take the optimized rewriting/extremum path and
//! (b) agree with exhaustive repair enumeration — closed and GROUP BY alike.

use rcqa::core::engine::{Method, RangeCqa};
use rcqa::core::exact::{exact_bounds, exact_bounds_by_group};
use rcqa::core::prepared::PreparedAggQuery;
use rcqa::core::rewrite::BoundKind;
use rcqa::gen::JoinWorkload;
use rcqa::query::parse_agg_query;

/// Every (aggregate, bound) pair with a known rewriting over the join
/// workload's schema (`R(x, y)`, `S(y, z, r)` with non-negative `r`), with
/// the expected evaluation method.
const REWRITABLE: &[(&str, BoundKind, Method)] = &[
    (
        "SUM(r) <- R(x, y), S(y, z, r)",
        BoundKind::Glb,
        Method::Rewriting,
    ),
    (
        "COUNT(*) <- R(x, y), S(y, z, r)",
        BoundKind::Glb,
        Method::Rewriting,
    ),
    (
        "MAX(r) <- R(x, y), S(y, z, r)",
        BoundKind::Glb,
        Method::Rewriting,
    ),
    (
        "MAX(r) <- R(x, y), S(y, z, r)",
        BoundKind::Lub,
        Method::PlainExtremum,
    ),
    (
        "MIN(r) <- R(x, y), S(y, z, r)",
        BoundKind::Glb,
        Method::PlainExtremum,
    ),
    (
        "MIN(r) <- R(x, y), S(y, z, r)",
        BoundKind::Lub,
        Method::Rewriting,
    ),
];

fn workloads() -> impl Iterator<Item = JoinWorkload> {
    [
        (1u64, 0.0),
        (2, 0.2),
        (3, 0.4),
        (5, 0.6),
        (8, 0.3),
        (13, 0.5),
    ]
    .into_iter()
    .map(|(seed, ratio)| JoinWorkload {
        r_blocks: 7,
        y_domain: 4,
        s_blocks_per_y: 2,
        inconsistency_ratio: ratio,
        block_size: 2,
        max_value: 25,
        seed,
    })
}

#[test]
fn optimized_paths_agree_with_repair_enumeration() {
    for cfg in workloads() {
        let db = cfg.generate();
        if db.repair_count().unwrap_or(u128::MAX) > 1 << 14 {
            continue;
        }
        for &(text, bound, expected_method) in REWRITABLE {
            let query = parse_agg_query(text).unwrap();
            let engine = RangeCqa::new(&query, &cfg.schema()).unwrap();
            let prepared = PreparedAggQuery::new(&query, &cfg.schema()).unwrap();
            let exact = exact_bounds(&prepared, &db, 1 << 20).unwrap();
            let (answer, exact_value) = match bound {
                BoundKind::Glb => (engine.glb(&db).unwrap()[0].1, exact.glb),
                BoundKind::Lub => (engine.lub(&db).unwrap()[0].1, exact.lub),
            };
            assert_eq!(
                answer.method, expected_method,
                "{text} {bound:?} must take the optimized path (seed {})",
                cfg.seed
            );
            assert_eq!(
                answer.value, exact_value,
                "{text} {bound:?} disagrees with repair enumeration (seed {})",
                cfg.seed
            );
        }
    }
}

#[test]
fn optimized_grouped_paths_agree_with_repair_enumeration() {
    let grouped: &[(&str, BoundKind)] = &[
        ("(x, SUM(r)) <- R(x, y), S(y, z, r)", BoundKind::Glb),
        ("(x, MAX(r)) <- R(x, y), S(y, z, r)", BoundKind::Glb),
        ("(x, MAX(r)) <- R(x, y), S(y, z, r)", BoundKind::Lub),
        ("(x, MIN(r)) <- R(x, y), S(y, z, r)", BoundKind::Glb),
        ("(x, MIN(r)) <- R(x, y), S(y, z, r)", BoundKind::Lub),
    ];
    for cfg in workloads() {
        let db = cfg.generate();
        if db.repair_count().unwrap_or(u128::MAX) > 1 << 12 {
            continue;
        }
        for &(text, bound) in grouped {
            let query = parse_agg_query(text).unwrap();
            let engine = RangeCqa::new(&query, &cfg.schema()).unwrap();
            let prepared = PreparedAggQuery::new(&query, &cfg.schema()).unwrap();
            let exact = exact_bounds_by_group(&prepared, &db, 1 << 20).unwrap();
            let ours = match bound {
                BoundKind::Glb => engine.glb(&db).unwrap(),
                BoundKind::Lub => engine.lub(&db).unwrap(),
            };
            assert_eq!(
                ours.len(),
                exact.len(),
                "{text} group count (seed {})",
                cfg.seed
            );
            for ((key_a, answer), (key_b, bounds)) in ours.iter().zip(exact.iter()) {
                assert_eq!(key_a, key_b, "{text} group order (seed {})", cfg.seed);
                assert_ne!(
                    answer.method,
                    Method::ExactEnumeration,
                    "{text} {bound:?} must take the optimized path (seed {})",
                    cfg.seed
                );
                let exact_value = match bound {
                    BoundKind::Glb => bounds.glb,
                    BoundKind::Lub => bounds.lub,
                };
                assert_eq!(
                    answer.value, exact_value,
                    "{text} {bound:?} group {key_a:?} disagrees (seed {})",
                    cfg.seed
                );
            }
        }
    }
}

#[test]
fn range_is_consistent_with_individual_bounds_on_generated_data() {
    for cfg in workloads().take(3) {
        let db = cfg.generate();
        let query = parse_agg_query("(x, MAX(r)) <- R(x, y), S(y, z, r)").unwrap();
        let engine = RangeCqa::new(&query, &cfg.schema()).unwrap();
        let ranges = engine.range(&db).unwrap();
        let glb = engine.glb(&db).unwrap();
        let lub = engine.lub(&db).unwrap();
        assert_eq!(ranges.len(), glb.len());
        for ((range, (gk, g)), (lk, l)) in ranges.iter().zip(glb.iter()).zip(lub.iter()) {
            assert_eq!(&range.key, gk);
            assert_eq!(&range.key, lk);
            assert_eq!(range.glb.as_ref().unwrap(), g);
            assert_eq!(range.lub.as_ref().unwrap(), l);
            // A range answer is an interval: glb ≤ lub whenever both exist.
            if let (Some(lo), Some(hi)) = (g.value, l.value) {
                assert!(lo <= hi, "inverted interval for group {gk:?}");
            }
        }
    }
}
