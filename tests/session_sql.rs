//! End-to-end SQL through the session facade: every layer — SQL parser,
//! catalog lowering, classification, plan-IR lowering, (parallel) executor —
//! on one path, against the paper's Fig. 1 instance and a generated workload.

use rcqa::core::engine::{EngineOptions, Method};
use rcqa::data::{fact, rat};
use rcqa::gen::JoinWorkload;
use rcqa::query::{Catalog, TableDef};
use rcqa::session::{Session, SessionError};

fn fig1_session() -> Session {
    let catalog = Catalog::new()
        .with_table(TableDef::new("Dealers").key_column("Name").column("Town"))
        .with_table(
            TableDef::new("Stock")
                .key_column("Product")
                .key_column("Town")
                .numeric_column("Qty"),
        );
    let session = Session::new(catalog);
    session
        .insert_all([
            fact!("Dealers", "Smith", "Boston"),
            fact!("Dealers", "Smith", "New York"),
            fact!("Dealers", "James", "Boston"),
            fact!("Stock", "Tesla X", "Boston", 35),
            fact!("Stock", "Tesla X", "Boston", 40),
            fact!("Stock", "Tesla Y", "Boston", 35),
            fact!("Stock", "Tesla Y", "New York", 95),
            fact!("Stock", "Tesla Y", "New York", 96),
        ])
        .unwrap();
    session
}

#[test]
fn paper_sql_example_through_the_facade() {
    let session = fig1_session();
    let outcome = session
        .execute(
            "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town GROUP BY D.Name",
        )
        .unwrap();
    assert!(outcome.classification.attack_graph_acyclic);
    assert_eq!(outcome.columns, vec!["Name".to_string(), "SUM".to_string()]);
    assert_eq!(outcome.rows.len(), 2);
    let james = &outcome.rows[0];
    assert_eq!(james.key[0].to_string(), "James");
    assert_eq!(james.glb.unwrap().value, Some(rat(70)));
    assert_eq!(james.lub.unwrap().value, Some(rat(75)));
    let smith = &outcome.rows[1];
    assert_eq!(smith.glb.unwrap().value, Some(rat(70)));
    assert_eq!(smith.glb.unwrap().method, Method::Rewriting);
    assert_eq!(smith.lub.unwrap().value, Some(rat(96)));
    assert_eq!(smith.lub.unwrap().method, Method::ExactEnumeration);
}

#[test]
fn explain_matches_the_executed_strategy() {
    let session = fig1_session();
    let plan = session
        .explain(
            "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town GROUP BY D.Name",
        )
        .unwrap();
    assert!(plan.contains("Rewrite(MAX, Minimise)"), "{plan}");
    assert!(plan.contains("Extremum(Maximise)"), "{plan}");
    assert!(plan.contains("PartitionByGroup [d_name]"), "{plan}");
}

#[test]
fn session_parallelism_is_transparent() {
    // The same SQL over a generated inconsistent instance answers identically
    // at every worker count.
    let cfg = JoinWorkload {
        r_blocks: 18,
        y_domain: 9,
        s_blocks_per_y: 3,
        inconsistency_ratio: 0.3,
        block_size: 2,
        max_value: 50,
        seed: 33,
    };
    let catalog = Catalog::new()
        .with_table(TableDef::new("R").key_column("X").column("Y"))
        .with_table(
            TableDef::new("S")
                .key_column("Y")
                .key_column("Z")
                .numeric_column("Qty"),
        );
    let session = Session::with_instance(catalog, cfg.generate());
    // MAX is rewriting-backed on both bounds, so the whole answer (keys,
    // bounds, methods) must be identical at every worker count — and no
    // repair enumeration runs.
    let sql = "SELECT R.X, MAX(S.Qty) FROM R, S WHERE R.Y = S.Y GROUP BY R.X";
    let baseline = session
        .clone()
        .with_options(EngineOptions {
            threads: 1,
            ..EngineOptions::default()
        })
        .execute(sql)
        .unwrap();
    assert_eq!(baseline.rows.len(), 18);
    for threads in [2usize, 4, 8] {
        let outcome = session
            .clone()
            .with_options(EngineOptions {
                threads,
                ..EngineOptions::default()
            })
            .execute(sql)
            .unwrap();
        assert_eq!(outcome.rows, baseline.rows, "{threads} threads");
    }
}

#[test]
fn insert_invalidates_cached_answers() {
    // Regression for the stale-answer bug: with the session caching its index
    // and results, a query after an insert must see the new fact — at every
    // worker count.
    for threads in [1usize, 4] {
        let session = fig1_session().with_options(EngineOptions {
            threads,
            ..EngineOptions::default()
        });
        let sql = "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town GROUP BY D.Name";
        let before = session.execute(sql).unwrap();
        assert_eq!(before.rows.len(), 2, "{threads} threads");

        session
            .insert(fact!("Dealers", "Lopez", "New York"))
            .unwrap();
        let after = session.execute(sql).unwrap();
        assert_eq!(after.rows.len(), 3, "{threads} threads");
        assert_eq!(after.rows[1].key[0].to_string(), "Lopez");
        assert_eq!(after.rows[1].lub.unwrap().value, Some(rat(96)));

        // A consistent-making delete is seen too.
        assert!(session
            .delete(&fact!("Stock", "Tesla Y", "New York", 95))
            .unwrap());
        let slimmer = session.execute(sql).unwrap();
        assert_eq!(slimmer.rows[1].glb.unwrap().value, Some(rat(96)));
    }
}

#[test]
fn cached_answers_equal_cold_answers_on_generated_instances() {
    // Statement-cache coverage on generator-driven instances: the same SQL
    // answered twice by a warm session must equal a cold session's answer,
    // sequentially and in parallel, across seeds.
    let catalog = || {
        Catalog::new()
            .with_table(TableDef::new("R").key_column("X").column("Y"))
            .with_table(
                TableDef::new("S")
                    .key_column("Y")
                    .key_column("Z")
                    .numeric_column("Qty"),
            )
    };
    let sql = "SELECT R.X, MAX(S.Qty) FROM R, S WHERE R.Y = S.Y GROUP BY R.X";
    for seed in [1u64, 22, 333] {
        let cfg = JoinWorkload {
            r_blocks: 12,
            y_domain: 6,
            s_blocks_per_y: 2,
            inconsistency_ratio: 0.4,
            block_size: 2,
            max_value: 40,
            seed,
        };
        let warm = Session::with_instance(catalog(), cfg.generate());
        let first = warm.execute(sql).unwrap();
        let second = warm.execute(sql).unwrap();
        assert_eq!(first.rows, second.rows, "seed {seed}: warm repeat differs");
        assert_eq!(warm.stats().result_hits, 1, "seed {seed}");
        for threads in [1usize, 4] {
            let cold =
                Session::with_instance(catalog(), cfg.generate()).with_options(EngineOptions {
                    threads,
                    ..EngineOptions::default()
                });
            assert_eq!(
                cold.execute(sql).unwrap().rows,
                first.rows,
                "seed {seed}: cold@{threads}T differs from warm"
            );
        }
    }
}

#[test]
fn sql_escapes_and_terminators_through_the_facade() {
    let session = fig1_session();
    session
        .insert(fact!("Dealers", "O'Brien", "Boston"))
        .unwrap();
    let outcome = session
        .execute(
            "SELECT SUM(S.Qty) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town AND D.Name = 'O''Brien';",
        )
        .unwrap();
    assert_eq!(outcome.rows.len(), 1);
    // Boston stock: Tesla X {35,40} + Tesla Y {35} → glb 70.
    assert_eq!(outcome.rows[0].glb.unwrap().value, Some(rat(70)));
    // Mid-statement terminators stay errors end to end.
    assert!(matches!(
        session.execute("SELECT SUM(S.Qty) FROM ; Stock AS S"),
        Err(SessionError::Query(_))
    ));
}

#[test]
fn bad_sql_is_a_session_error() {
    let session = fig1_session();
    assert!(matches!(
        session.execute("SELECT SUM(S.Qty) FROM Missing AS S"),
        Err(SessionError::Query(_))
    ));
}
