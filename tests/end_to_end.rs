//! Cross-crate integration tests: SQL front-end → classification → rewriting
//! → range-consistent answers, on the paper's examples and on generated data.

use rcqa::core::engine::{Method, RangeCqa};
use rcqa::core::exact::exact_bounds;
use rcqa::core::prepared::PreparedAggQuery;
use rcqa::core::rewrite::BoundKind;
use rcqa::data::{fact, rat, DatabaseInstance, NumericDomain, Value};
use rcqa::gen::JoinWorkload;
use rcqa::logic::Evaluator;
use rcqa::query::{parse_agg_query, parse_sql, Catalog, TableDef};

fn stock_catalog() -> Catalog {
    Catalog::new()
        .with_table(TableDef::new("Dealers").key_column("Name").column("Town"))
        .with_table(
            TableDef::new("Stock")
                .key_column("Product")
                .key_column("Town")
                .numeric_column("Qty"),
        )
}

fn db_stock() -> DatabaseInstance {
    let mut db = DatabaseInstance::new(stock_catalog().schema());
    db.insert_all([
        fact!("Dealers", "Smith", "Boston"),
        fact!("Dealers", "Smith", "New York"),
        fact!("Dealers", "James", "Boston"),
        fact!("Stock", "Tesla X", "Boston", 35),
        fact!("Stock", "Tesla X", "Boston", 40),
        fact!("Stock", "Tesla Y", "Boston", 35),
        fact!("Stock", "Tesla Y", "New York", 95),
        fact!("Stock", "Tesla Y", "New York", 96),
    ])
    .unwrap();
    db
}

#[test]
fn sql_to_range_answers_on_fig1() {
    let catalog = stock_catalog();
    let db = db_stock();
    let sql = "SELECT SUM(S.Qty) FROM Dealers AS D, Stock AS S \
               WHERE D.Town = S.Town AND D.Name = 'Smith'";
    let translated = parse_sql(sql, &catalog).unwrap();
    let engine = RangeCqa::new(&translated.query, &catalog.schema()).unwrap();
    let glb = engine.glb(&db).unwrap();
    assert_eq!(glb[0].1.value, Some(rat(70)));
    assert_eq!(glb[0].1.method, Method::Rewriting);

    // GROUP BY variant.
    let sql = "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
               WHERE D.Town = S.Town GROUP BY D.Name";
    let translated = parse_sql(sql, &catalog).unwrap();
    let engine = RangeCqa::new(&translated.query, &catalog.schema()).unwrap();
    let ranges = engine.range(&db).unwrap();
    assert_eq!(ranges.len(), 2);
    let smith = ranges
        .iter()
        .find(|r| r.key[0] == Value::text("Smith"))
        .unwrap();
    assert_eq!(smith.glb.unwrap().value, Some(rat(70)));
    assert_eq!(smith.lub.unwrap().value, Some(rat(96)));
    let james = ranges
        .iter()
        .find(|r| r.key[0] == Value::text("James"))
        .unwrap();
    assert_eq!(james.glb.unwrap().value, Some(rat(70)));
    assert_eq!(james.lub.unwrap().value, Some(rat(75)));
}

#[test]
fn classification_and_rewriting_agree_with_engine_on_fig1() {
    let catalog = stock_catalog();
    let db = db_stock();
    let query = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
    let engine = RangeCqa::new(&query, &catalog.schema()).unwrap();
    let classification = engine.classification(NumericDomain::NonNegative);
    assert!(classification.attack_graph_acyclic);
    assert!(classification.glb.is_rewritable());

    // Evaluate the symbolic rewriting with the AGGR[FOL] evaluator and compare
    // with the operational engine.
    let rewriting = engine.rewriting(BoundKind::Glb).unwrap();
    let evaluator = Evaluator::new(&db);
    let rows = evaluator.eval_query(&rewriting.as_numerical_query());
    assert_eq!(rows.len(), 1);
    let operational = engine.glb(&db).unwrap()[0].1.value;
    assert_eq!(rows[0].1, operational);
    assert_eq!(operational, Some(rat(70)));
}

#[test]
fn engine_matches_exact_enumeration_on_generated_workloads() {
    // Several small generated instances with different seeds and ratios: the
    // rewriting-based GLB must always agree with exhaustive enumeration, and
    // COUNT/MAX/MIN bounds must agree too.
    for (seed, ratio) in [(1u64, 0.1), (2, 0.3), (3, 0.5), (4, 0.0)] {
        let cfg = JoinWorkload {
            r_blocks: 12,
            y_domain: 6,
            s_blocks_per_y: 2,
            inconsistency_ratio: ratio,
            block_size: 2,
            max_value: 30,
            seed,
        };
        let db = cfg.generate();
        for text in [
            "SUM(r) <- R(x, y), S(y, z, r)",
            "COUNT(*) <- R(x, y), S(y, z, r)",
            "MAX(r) <- R(x, y), S(y, z, r)",
            "MIN(r) <- R(x, y), S(y, z, r)",
        ] {
            let query = parse_agg_query(text).unwrap();
            let engine = RangeCqa::new(&query, &cfg.schema()).unwrap();
            let prepared = PreparedAggQuery::new(&query, &cfg.schema()).unwrap();
            let exact = exact_bounds(&prepared, &db, 1 << 24).unwrap();
            let glb = engine.glb(&db).unwrap()[0].1.value;
            let lub = engine.lub(&db).unwrap()[0].1.value;
            assert_eq!(
                glb, exact.glb,
                "glb mismatch for {text} (seed {seed}, ratio {ratio})"
            );
            assert_eq!(
                lub, exact.lub,
                "lub mismatch for {text} (seed {seed}, ratio {ratio})"
            );
        }
    }
}

#[test]
fn grouped_answers_match_exact_enumeration() {
    let cfg = JoinWorkload {
        r_blocks: 8,
        y_domain: 4,
        s_blocks_per_y: 2,
        inconsistency_ratio: 0.4,
        block_size: 2,
        max_value: 20,
        seed: 9,
    };
    let db = cfg.generate();
    let query = cfg.grouped_sum_query();
    let engine = RangeCqa::new(&query, &cfg.schema()).unwrap();
    let prepared = PreparedAggQuery::new(&query, &cfg.schema()).unwrap();
    let ours = engine.glb(&db).unwrap();
    let exact = rcqa::core::exact_bounds_by_group(&prepared, &db, 1 << 24).unwrap();
    assert_eq!(ours.len(), exact.len());
    for ((key_a, answer), (key_b, bounds)) in ours.iter().zip(exact.iter()) {
        assert_eq!(key_a, key_b);
        assert_eq!(answer.value, bounds.glb, "group {key_a:?}");
    }
}
