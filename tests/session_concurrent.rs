//! Concurrent serving under snapshot isolation: one warm [`Session`] shared
//! by 1/2/4 client threads answers byte-identically to cold sessions —
//! including while a writer commits between reads. Every read carries the
//! epoch of its pinned snapshot, so the assertions reconstruct the exact
//! instance each read saw and replay it cold.

use rcqa::data::{fact, DatabaseInstance, Fact};
use rcqa::gen::JoinWorkload;
use rcqa::query::{Catalog, TableDef};
use rcqa::session::Session;
use std::sync::{Arc, Mutex};

fn rs_catalog() -> Catalog {
    Catalog::new()
        .with_table(TableDef::new("R").key_column("X").column("Y"))
        .with_table(
            TableDef::new("S")
                .key_column("Y")
                .key_column("Z")
                .numeric_column("Qty"),
        )
}

fn workload() -> JoinWorkload {
    JoinWorkload {
        r_blocks: 20,
        y_domain: 10,
        s_blocks_per_y: 2,
        inconsistency_ratio: 0.25,
        block_size: 2,
        max_value: 60,
        seed: 11,
    }
}

/// MAX is rewriting-backed on both bounds, so every arm stays on the
/// one-pass pipeline.
const SQL: &str = "SELECT R.X, MAX(S.Qty) FROM R, S WHERE R.Y = S.Y GROUP BY R.X";

fn cold_rows(db: &DatabaseInstance) -> Arc<[rcqa::core::engine::GroupRange]> {
    Session::with_instance(rs_catalog(), db.clone())
        .execute(SQL)
        .expect("cold execute")
        .rows
}

#[test]
fn warm_concurrent_reads_equal_cold_at_every_client_thread_count() {
    let db = workload().generate();
    let expected = cold_rows(&db);
    for client_threads in [1usize, 2, 4] {
        let warm = Session::with_instance(rs_catalog(), db.clone());
        warm.execute(SQL).expect("warm-up");
        std::thread::scope(|scope| {
            for _ in 0..client_threads {
                let warm = &warm;
                let expected = &expected;
                scope.spawn(move || {
                    for _ in 0..8 {
                        let outcome = warm.execute(SQL).expect("warm concurrent execute");
                        assert_eq!(
                            outcome.rows, *expected,
                            "{client_threads} clients: warm read differs from cold"
                        );
                    }
                });
            }
        });
        let stats = warm.stats();
        assert_eq!(
            stats.index_builds, 1,
            "{client_threads} clients: concurrent readers must share one index"
        );
        assert_eq!(stats.statements_prepared, 1);
        assert_eq!(
            stats.result_hits,
            8 * client_threads as u64,
            "{client_threads} clients: every concurrent read is a result hit"
        );
    }
}

#[test]
fn readers_racing_a_writer_match_cold_sessions_at_their_pinned_epoch() {
    let base = workload().generate();
    let writes: Vec<Fact> = (0..10)
        .map(|i| fact!("R", format!("zz{i:02}"), "y0"))
        .collect();
    // Cold reference rows for every prefix of the write sequence: epoch e in
    // the warm session corresponds to the base instance plus the first e
    // writes (each insert is effective and bumps the epoch by exactly one).
    let expected_by_epoch: Vec<Arc<[rcqa::core::engine::GroupRange]>> = {
        let mut staged = base.clone();
        let mut all = vec![cold_rows(&staged)];
        for f in &writes {
            staged.insert(f.clone()).expect("staged insert");
            all.push(cold_rows(&staged));
        }
        all
    };

    for client_threads in [1usize, 2, 4] {
        let session = Session::with_instance(rs_catalog(), base.clone());
        session.execute(SQL).expect("warm-up");
        let observed: Mutex<Vec<(u64, Arc<[rcqa::core::engine::GroupRange]>)>> =
            Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..client_threads {
                let session = &session;
                let observed = &observed;
                scope.spawn(move || {
                    for _ in 0..16 {
                        let outcome = session.execute(SQL).expect("racing read");
                        observed.lock().unwrap().push((outcome.epoch, outcome.rows));
                    }
                });
            }
            let session = &session;
            let writes = &writes;
            scope.spawn(move || {
                for f in writes {
                    assert!(session.insert(f.clone()).expect("concurrent insert"));
                }
            });
        });
        assert_eq!(session.epoch(), writes.len() as u64);
        // Every concurrent read was byte-identical to a cold session over
        // the instance at its pinned epoch — reads are never torn, stale
        // rows are never served for a newer epoch.
        let observed = observed.into_inner().unwrap();
        assert_eq!(observed.len(), 16 * client_threads);
        for (epoch, rows) in &observed {
            assert_eq!(
                rows, &expected_by_epoch[*epoch as usize],
                "{client_threads} clients: read at epoch {epoch} differs from cold"
            );
        }
        // And the settled session agrees with the final prefix.
        assert_eq!(
            session.execute(SQL).expect("final read").rows,
            *expected_by_epoch.last().unwrap()
        );
    }
}
