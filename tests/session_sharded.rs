//! Sharded-vs-unsharded byte-identity under random write interleavings.
//!
//! The scale-out front-end's whole contract is that sharding is invisible:
//! for every statement shape — fan-out (full-key GROUP BY), global HAVING,
//! top-k re-decided over the merged rows, residual/exhaustive combine,
//! joins, and closed designated-shard lookups — a [`ShardedSession`] must
//! return answers byte-identical to a single unsharded [`Session`] fed the
//! same operations, at every shard count, at every thread count, and after
//! crash-recovering every shard from its write-ahead log.

use proptest::prelude::*;
use rcqa::core::engine::EngineOptions;
use rcqa::data::{fact, Fact, Value};
use rcqa::query::{Catalog, TableDef};
use rcqa::session::{Session, SessionError, ShardedSession, SyncPolicy, WalOptions};

fn catalog() -> Catalog {
    Catalog::new()
        .with_table(TableDef::new("Dealers").key_column("Name").column("Town"))
        .with_table(
            TableDef::new("Stock")
                .key_column("Product")
                .key_column("Town")
                .numeric_column("Qty"),
        )
}

/// One statement per routing/post-processing shape the merge must get right.
const STATEMENTS: &[&str] = &[
    // Full-key GROUP BY: the fan-out route — each group's blocks live on
    // exactly one shard, so per-shard rows merge by key.
    "SELECT S.Product, S.Town, MAX(S.Qty) FROM Stock AS S \
     GROUP BY S.Product, S.Town",
    // Fan-out + HAVING: the trichotomy is per group, but the surviving row
    // set is re-decided globally after the merge.
    "SELECT S.Product, S.Town, SUM(S.Qty) FROM Stock AS S \
     GROUP BY S.Product, S.Town HAVING SUM(S.Qty) > 40",
    // Fan-out + certain top-k: ORDER BY/LIMIT cannot be decided per shard
    // and must be re-run over the merged rows.
    "SELECT S.Product, S.Town, MAX(S.Qty) FROM Stock AS S \
     GROUP BY S.Product, S.Town ORDER BY MAX(S.Qty) DESC LIMIT 3",
    // Residual comparison predicate: exhaustive support, honest
    // cross-shard combine (answered at the mirror's union snapshot).
    "SELECT S.Product, S.Town, MIN(S.Qty) FROM Stock AS S \
     WHERE S.Qty > 10 GROUP BY S.Product, S.Town",
    // Join: grouping does not determine Stock's block key, so the same
    // group draws blocks from several shards — combine route.
    "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
     WHERE D.Town = S.Town GROUP BY D.Name",
    // Subset-of-key GROUP BY: the unconstrained key component scatters a
    // group's blocks across shards — combine route, still byte-identical.
    "SELECT S.Town, MAX(S.Qty) FROM Stock AS S GROUP BY S.Town",
    // Closed query with a fully constant key: routed to the one designated
    // shard that owns the block.
    "SELECT MAX(S.Qty) FROM Stock AS S \
     WHERE S.Product = 'p1' AND S.Town = 'Boston'",
];

/// Small value domains so draws collide: inserts become duplicates, deletes
/// hit present facts, and Stock keys accumulate conflicting Qty values
/// (inconsistent blocks, which is the whole point of the semantics).
fn pool_fact(draw: u64) -> Fact {
    const TOWNS: [&str; 3] = ["Boston", "Dover", "Erie"];
    if draw.is_multiple_of(3) {
        let draw = draw / 3;
        fact!(
            "Dealers",
            format!("n{}", draw % 3),
            TOWNS[(draw / 3) as usize % 3]
        )
    } else {
        let draw = draw / 3;
        Fact::new(
            "Stock",
            [
                Value::text(format!("p{}", draw % 4)),
                Value::text(TOWNS[(draw / 4) as usize % 3]),
                Value::int(5 + 20 * ((draw / 12) % 3) as i64),
            ],
        )
    }
}

fn wal_options() -> WalOptions {
    WalOptions {
        sync: SyncPolicy::Never,
        checkpoint_every: 4,
        ..WalOptions::default()
    }
}

/// Asserts that `sharded` answers every statement byte-identically to the
/// unsharded `reference` session.
fn assert_agrees(sharded: &ShardedSession, reference: &Session, context: &str) {
    for sql in STATEMENTS {
        let got = sharded.execute(sql).expect("sharded execute");
        let want = reference.execute(sql).expect("unsharded execute");
        prop_assert_eq!(&want.columns, &got.columns, "{} columns: {}", context, sql);
        prop_assert_eq!(&want.rows, &got.rows, "{} rows: {}", context, sql);
        prop_assert_eq!(
            &want.more_aggregates,
            &got.more_aggregates,
            "{} extra aggregates: {}",
            context,
            sql
        );
        prop_assert_eq!(&want.having, &got.having, "{} having: {}", context, sql);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn sharded_answers_are_byte_identical_to_unsharded(
        ops in proptest::collection::vec((0u8..3, 0u64..1_000_000), 2..9),
    ) {
        let dir = tempfile::TempDir::new().expect("tempdir");
        for shards in [1usize, 2, 4, 7] {
            for threads in [1usize, 4] {
                let engine = EngineOptions { threads, ..EngineOptions::default() };
                let path = dir.path().join(format!("s{shards}-t{threads}"));
                let sharded =
                    ShardedSession::open_with(catalog(), &path, shards, wal_options())
                        .expect("open sharded")
                        .with_options(engine);
                let reference = Session::new(catalog()).with_options(engine);
                for &(op, draw) in &ops {
                    let f = pool_fact(draw);
                    let (got, want) = match op {
                        0 | 1 => (
                            sharded.insert(f.clone()).expect("sharded insert"),
                            reference.insert(f).expect("unsharded insert"),
                        ),
                        _ => (
                            sharded.delete(&f).expect("sharded delete"),
                            reference.delete(&f).expect("unsharded delete"),
                        ),
                    };
                    prop_assert_eq!(got, want, "effect flags diverge at {} shards", shards);
                    assert_agrees(&sharded, &reference, &format!("s{shards}/t{threads}"));
                }
                prop_assert_eq!(
                    sharded.epoch_frontier().iter().sum::<u64>(),
                    sharded.epoch(),
                    "frontier must sum to the front-end epoch"
                );
                // Crash-recover every shard: drop the live front-end (its
                // logs are on disk), reopen the directory, and demand the
                // same answers again.
                sharded.sync().expect("sync all shards");
                drop(sharded);
                let recovered =
                    ShardedSession::open_with(catalog(), &path, shards, wal_options())
                        .expect("recover all shards")
                        .with_options(engine);
                assert_agrees(
                    &recovered,
                    &reference,
                    &format!("recovered s{shards}/t{threads}"),
                );
                // Reopening with the wrong shard count must be refused, not
                // silently re-routed.
                if shards > 1 {
                    let wrong =
                        ShardedSession::open_with(catalog(), &path, shards - 1, wal_options());
                    prop_assert!(
                        matches!(wrong, Err(SessionError::Wal(_))),
                        "a {}-shard directory must refuse to open as {} shards",
                        shards,
                        shards - 1
                    );
                }
            }
        }
    }
}

/// Writes keep working after recovery: the recovered front-end continues
/// from the recovered frontier and stays byte-identical to an unsharded
/// session fed the same total history.
#[test]
fn recovered_sharded_session_accepts_further_writes() {
    let dir = tempfile::TempDir::new().expect("tempdir");
    let path = dir.path().join("continue");
    let catalog = catalog();
    let reference = Session::new(catalog.clone());
    {
        let sharded =
            ShardedSession::open_with(catalog.clone(), &path, 4, wal_options()).expect("open");
        for draw in 0..10u64 {
            let f = pool_fact(draw * 7 + 1);
            assert_eq!(
                sharded.insert(f.clone()).expect("insert"),
                reference.insert(f).expect("insert")
            );
        }
        sharded.sync().expect("sync");
    }
    let sharded = ShardedSession::open_with(catalog, &path, 4, wal_options()).expect("recover");
    for draw in 10..20u64 {
        let f = pool_fact(draw * 7 + 1);
        assert_eq!(
            sharded.insert(f.clone()).expect("insert after recovery"),
            reference.insert(f).expect("insert")
        );
    }
    for sql in STATEMENTS {
        assert_eq!(
            sharded.execute(sql).expect("sharded").rows,
            reference.execute(sql).expect("unsharded").rows,
            "{sql}"
        );
    }
}
