//! Structural-sharing persistence invariants of the serving session.
//!
//! PR 4's snapshot chain deep-cloned the whole instance and index per commit;
//! the structurally-shared rewrite derives successors by path-copying. These
//! tests pin down the correctness half of that bargain:
//!
//! * after **every** commit of a random interleaving of `insert`,
//!   `insert_all`, and `delete` batches, the warm snapshot's incrementally
//!   maintained index is *structurally identical* (block order, fact order,
//!   key and posting lookups) to a cold `DbIndex::new` over the same
//!   instance, and query answers are byte-identical to cold sessions at 1
//!   and 4 executor threads;
//! * a relation can be emptied completely and repopulated without the warm
//!   index diverging from a cold rebuild (the old
//!   `DatabaseInstance::remove` left an empty relation entry behind);
//! * successor snapshots physically share storage with their base for
//!   everything a batch does not touch.

use proptest::prelude::*;
use rcqa::core::engine::EngineOptions;
use rcqa::core::index::DbIndex;
use rcqa::data::{fact, DatabaseInstance, Fact, Value};
use rcqa::query::{Catalog, TableDef};
use rcqa::session::Session;

/// `R(X, Y)` with key `X`; `S(Y, Z, Qty)` with key `(Y, Z)`, numeric `Qty`.
fn rs_catalog() -> Catalog {
    Catalog::new()
        .with_table(TableDef::new("R").key_column("X").column("Y"))
        .with_table(
            TableDef::new("S")
                .key_column("Y")
                .key_column("Z")
                .numeric_column("Qty"),
        )
}

const GROUPED_MAX: &str = "SELECT R.X, MAX(S.Qty) FROM R, S WHERE R.Y = S.Y GROUP BY R.X";

/// Small value domains so random draws collide: the same block gains several
/// facts, blocks empty out and reappear, and whole relations drain.
fn r_fact(draw: u64) -> Fact {
    let x = draw % 5;
    let y = (draw / 5) % 3;
    fact!("R", format!("x{x}"), format!("y{y}"))
}

fn s_fact(draw: u64) -> Fact {
    let y = draw % 3;
    let z = (draw / 3) % 3;
    let qty = 1 + 4 * ((draw / 9) % 3);
    Fact::new(
        "S",
        [
            Value::text(format!("y{y}")),
            Value::text(format!("z{z}")),
            Value::int(qty as i64),
        ],
    )
}

fn pool_fact(draw: u64) -> Fact {
    if draw.is_multiple_of(2) {
        r_fact(draw / 2)
    } else {
        s_fact(draw / 2)
    }
}

/// The full warm-vs-cold check after one commit: instance contents, index
/// structure, and answers at two thread counts.
fn assert_matches_cold(session: &Session, mirror: &DatabaseInstance) {
    let snapshot = session.snapshot();
    assert_eq!(
        **snapshot.db(),
        *mirror,
        "session instance diverged from the op-by-op mirror"
    );
    // Forces the snapshot's index into existence (cold build or the warm
    // maintained one, whichever this snapshot carries).
    let warm = session.execute(GROUPED_MAX).expect("warm execute").rows;
    snapshot
        .index()
        .expect("executed snapshots hold an index")
        .assert_structurally_identical(&DbIndex::new(snapshot.db()));
    for threads in [1usize, 4] {
        let cold = Session::with_instance(rs_catalog(), snapshot.db().clone()).with_options(
            EngineOptions {
                threads,
                ..EngineOptions::default()
            },
        );
        assert_eq!(
            cold.execute(GROUPED_MAX).expect("cold execute").rows,
            warm,
            "cold@{threads}T differs from the warm session"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random interleavings of single inserts, bulk batches, and deletes:
    /// after every commit the warm snapshot must be indistinguishable —
    /// structurally and answer-wise — from a cold start over the same data.
    #[test]
    fn random_interleavings_stay_identical_to_cold_rebuilds(
        ops in proptest::collection::vec((0u64..6, 0u64..1_000_000), 1..10),
    ) {
        let session = Session::new(rs_catalog());
        let mut mirror = DatabaseInstance::new(rs_catalog().schema());
        // Warm the index early so every subsequent commit exercises the
        // delta-replay path rather than deferring to a cold build.
        session.execute(GROUPED_MAX).expect("initial execute");
        for (op, draw) in ops {
            match op {
                // Single insert (R or S).
                0 | 1 => {
                    let f = pool_fact(draw);
                    session.insert(f.clone()).expect("insert conforms");
                    mirror.insert(f).expect("mirror insert conforms");
                }
                // Bulk batch: one atomic commit of 2..=17 facts — the shape
                // that used to trigger the drop-the-index fallback.
                2 | 3 => {
                    let batch: Vec<Fact> =
                        (0..(2 + draw % 16)).map(|i| pool_fact(draw.wrapping_add(i * 37))).collect();
                    session.insert_all(batch.clone()).expect("batch conforms");
                    mirror.insert_all(batch).expect("mirror batch conforms");
                }
                // Single delete (present or not).
                4 => {
                    let f = pool_fact(draw);
                    let removed = session.delete(&f).unwrap();
                    prop_assert_eq!(removed, mirror.remove(&f));
                }
                // Drain one relation completely, one commit per fact: blocks
                // empty out one by one until the relation itself is gone.
                _ => {
                    let name = if draw % 2 == 0 { "R" } else { "S" };
                    let facts: Vec<Fact> = mirror.facts_of(name).cloned().collect();
                    for f in facts {
                        prop_assert!(session.delete(&f).unwrap());
                        prop_assert!(mirror.remove(&f));
                        assert_matches_cold(&session, &mirror);
                    }
                }
            }
            assert_matches_cold(&session, &mirror);
        }
    }
}

/// Appended interner ids: a session warmed over an existing instance holds a
/// sorted id prefix; every later insert of a *fresh* value appends an id at
/// the top, so raw id order no longer matches value order. This interleaving
/// deliberately inserts values that sort before and between the warm-up data
/// ("a…", "m…" against "x…"/"y…"), deletes across both generations, and
/// re-inserts a previously deleted fact (whose ids stay interned) — after
/// every commit the warm index must stay structurally identical to a cold
/// rebuild and answer-identical to cold sessions at 1 and 4 threads.
#[test]
fn appended_ids_from_out_of_order_inserts_stay_identical_to_cold() {
    let mut initial = DatabaseInstance::new(rs_catalog().schema());
    initial
        .insert_all([
            fact!("R", "x0", "y0"),
            fact!("R", "x1", "y1"),
            fact!("S", "y0", "z0", 5),
            fact!("S", "y1", "z1", 9),
        ])
        .unwrap();
    let session = Session::with_instance(rs_catalog(), initial.clone());
    let mut mirror = initial;
    // Warm the index: the interner's sorted prefix now covers exactly the
    // initial values, so everything below is appended-id territory.
    session.execute(GROUPED_MAX).expect("warm-up");

    let steps: Vec<(bool, Fact)> = vec![
        // Fresh R key sorting before every existing x value.
        (true, fact!("R", "a0", "y0")),
        // Fresh S block whose y sorts between nothing and y0's world — new
        // key component and new qty on the numeric column.
        (
            true,
            Fact::new("S", [Value::text("b0"), Value::text("z9"), Value::int(3)]),
        ),
        // Join the two fresh generations: an old key pointing at the new y.
        (true, fact!("R", "m5", "b0")),
        // Delete a warm-up-generation fact...
        (false, fact!("R", "x0", "y0")),
        // ...and an appended-generation one.
        (false, fact!("R", "a0", "y0")),
        // Re-insert it: both ids are already interned, nothing new appends.
        (true, fact!("R", "a0", "y0")),
        // One more fresh value after the delete churn.
        (
            true,
            Fact::new("S", [Value::text("b0"), Value::text("c1"), Value::int(11)]),
        ),
    ];
    for (is_insert, f) in steps {
        if is_insert {
            session.insert(f.clone()).expect("insert conforms");
            mirror.insert(f).expect("mirror insert conforms");
        } else {
            assert!(session.delete(&f).expect("delete runs"));
            assert!(mirror.remove(&f));
        }
        assert_matches_cold(&session, &mirror);
    }
}

/// The emptied-then-repopulated regression: incrementally maintaining an
/// index across "relation drains to zero facts, then refills" must land on
/// exactly the cold-rebuild structure. The old `DatabaseInstance::remove`
/// left an empty `relations` entry behind after the last fact died, so an
/// emptied instance compared unequal to a fresh one.
#[test]
fn emptied_and_repopulated_relation_matches_cold_rebuild() {
    let session = Session::new(rs_catalog());
    session
        .insert_all([
            fact!("R", "x0", "y0"),
            fact!("R", "x0", "y1"),
            fact!("R", "x1", "y2"),
            fact!("S", "y0", "z0", 5),
            fact!("S", "y1", "z0", 7),
            fact!("S", "y2", "z1", 9),
        ])
        .unwrap();
    session.execute(GROUPED_MAX).unwrap();

    // Drain R fact by fact (through the delta path), then check structure.
    for f in [
        fact!("R", "x0", "y0"),
        fact!("R", "x0", "y1"),
        fact!("R", "x1", "y2"),
    ] {
        assert!(session.delete(&f).unwrap());
    }
    let emptied = session.snapshot();
    assert_eq!(session.execute(GROUPED_MAX).unwrap().rows.len(), 0);
    emptied
        .index()
        .expect("warm session keeps its maintained index")
        .assert_structurally_identical(&DbIndex::new(emptied.db()));
    // The emptied instance is indistinguishable from a never-populated one
    // holding only the surviving S facts.
    let mut expected = DatabaseInstance::new(rs_catalog().schema());
    expected
        .insert_all([
            fact!("S", "y0", "z0", 5),
            fact!("S", "y1", "z0", 7),
            fact!("S", "y2", "z1", 9),
        ])
        .unwrap();
    assert_eq!(**emptied.db(), expected);

    // Repopulate and verify the maintained index again, plus answers.
    session
        .insert_all([fact!("R", "x7", "y0"), fact!("R", "x8", "y2")])
        .unwrap();
    let refilled = session.snapshot();
    let rows = session.execute(GROUPED_MAX).unwrap().rows;
    assert_eq!(rows.len(), 2);
    refilled
        .index()
        .expect("warm session keeps its maintained index")
        .assert_structurally_identical(&DbIndex::new(refilled.db()));
    let cold = Session::with_instance(rs_catalog(), refilled.db().clone());
    assert_eq!(cold.execute(GROUPED_MAX).unwrap().rows, rows);
}

/// Successor snapshots share storage with their base for everything the
/// write batch does not touch — the cost model the serving layer's write
/// path is built on.
#[test]
fn snapshots_share_untouched_relations_with_their_base() {
    let session = Session::new(rs_catalog());
    session
        .insert_all([
            fact!("R", "x0", "y0"),
            fact!("S", "y0", "z0", 5),
            fact!("S", "y0", "z1", 7),
        ])
        .unwrap();
    session.execute(GROUPED_MAX).unwrap();
    let base = session.snapshot();

    // A write to R shares S (instance and index) with the base snapshot.
    session.insert(fact!("R", "x1", "y0")).unwrap();
    let next = session.snapshot();
    assert!(next.db().shares_relation_storage(base.db(), "S"));
    assert!(!next.db().shares_relation_storage(base.db(), "R"));
    let (base_idx, next_idx) = (base.index().unwrap(), next.index().unwrap());
    assert!(next_idx.shares_relation_storage(base_idx, "S"));
    assert!(!next_idx.shares_relation_storage(base_idx, "R"));

    // And both snapshots keep answering their own version of the data.
    assert_eq!(session.execute(GROUPED_MAX).unwrap().rows.len(), 2);
    let cold_base = Session::with_instance(rs_catalog(), base.db().clone());
    assert_eq!(cold_base.execute(GROUPED_MAX).unwrap().rows.len(), 1);
}
