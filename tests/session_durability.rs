//! Crash-recovery invariants of the durable serving session.
//!
//! The WAL's unit tests pin down record-level parsing; these tests drive the
//! whole stack — `Session::commit` appending to the log, a simulated crash
//! (the storage map is cut at an arbitrary byte offset), and
//! `Session::open_storage` replaying checkpoint + tail — and assert the
//! recovery contract:
//!
//! * the recovered instance is exactly the state after some **prefix of the
//!   committed batches** (a crash can cost an unsynced suffix, never tear a
//!   batch or leave a gap), and its query answers are byte-identical to a
//!   cold in-memory session over that prefix at 1 and 4 executor threads;
//! * *interior* corruption — damage before the tail — refuses recovery with
//!   [`rcqa::wal::WalError::Corrupt`] instead of silently dropping history;
//! * an append failure degrades gracefully: the commit errors (with the
//!   `std::io::Error` chained via `source()`), nothing is published, and
//!   the session keeps serving reads of the last committed snapshot;
//! * checkpoints are published atomically and prune covered segments
//!   without ever stranding a retained checkpoint's replay chain.

use proptest::prelude::*;
use rcqa::core::engine::EngineOptions;
use rcqa::data::{fact, DatabaseInstance, DeltaEvent, Fact, Value};
use rcqa::query::{Catalog, TableDef};
use rcqa::session::{Session, SessionError, SyncPolicy, WalOptions};
use rcqa::wal::{segment_name, FailingStorage, MemStorage, WalError};
use std::sync::Arc;

/// `R(X, Y)` with key `X`; `S(Y, Z, Qty)` with key `(Y, Z)`, numeric `Qty`.
fn rs_catalog() -> Catalog {
    Catalog::new()
        .with_table(TableDef::new("R").key_column("X").column("Y"))
        .with_table(
            TableDef::new("S")
                .key_column("Y")
                .key_column("Z")
                .numeric_column("Qty"),
        )
}

const GROUPED_MAX: &str = "SELECT R.X, MAX(S.Qty) FROM R, S WHERE R.Y = S.Y GROUP BY R.X";

/// Small value domains so random draws collide: inserts become duplicates,
/// deletes hit present facts, and batches mix effective and no-op events.
fn pool_fact(draw: u64) -> Fact {
    if draw.is_multiple_of(2) {
        let draw = draw / 2;
        let x = draw % 5;
        let y = (draw / 5) % 3;
        fact!("R", format!("x{x}"), format!("y{y}"))
    } else {
        let draw = draw / 2;
        let y = draw % 3;
        let z = (draw / 3) % 3;
        let qty = 1 + 4 * ((draw / 9) % 3);
        Fact::new(
            "S",
            [
                Value::text(format!("y{y}")),
                Value::text(format!("z{z}")),
                Value::int(qty as i64),
            ],
        )
    }
}

/// In-memory WAL options for crash tests: no fsync gating (MemStorage's
/// "disk" is the map itself) and no checkpoints unless a test wants them.
fn mem_options() -> WalOptions {
    WalOptions {
        sync: SyncPolicy::Never,
        checkpoint_every: 0,
        ..WalOptions::default()
    }
}

/// Asserts the recovered session's answers equal a cold in-memory session
/// over the same instance at 1 and 4 executor threads.
fn assert_answers_match_cold(recovered: &Session, expected: &Arc<DatabaseInstance>) {
    let warm = recovered.execute(GROUPED_MAX).expect("recovered execute");
    for threads in [1usize, 4] {
        let cold =
            Session::with_instance(rs_catalog(), expected.clone()).with_options(EngineOptions {
                threads,
                ..EngineOptions::default()
            });
        assert_eq!(
            cold.execute(GROUPED_MAX).expect("cold execute").rows,
            warm.rows,
            "cold@{threads}T differs from the recovered session"
        );
    }
}

#[test]
fn durable_session_roundtrips_through_a_real_directory() {
    let dir = tempfile::TempDir::new().expect("tempdir");
    let (epoch, rows) = {
        let session = Session::open(rs_catalog(), dir.path()).expect("open");
        assert!(session.is_durable());
        assert_eq!(session.epoch(), 0);
        session
            .insert_all([
                fact!("R", "x1", "y1"),
                fact!("R", "x2", "y2"),
                fact!("S", "y1", "z1", 5),
                fact!("S", "y2", "z1", 9),
            ])
            .expect("insert_all");
        assert!(session.delete(&fact!("R", "x2", "y2")).expect("delete"));
        assert_eq!(session.epoch(), 5);
        assert_eq!(session.durable_epoch(), Some(5), "Always syncs per commit");
        (
            session.epoch(),
            session.execute(GROUPED_MAX).expect("execute").rows,
        )
    };

    let session = Session::open(rs_catalog(), dir.path()).expect("reopen");
    assert_eq!(session.epoch(), epoch, "epoch survives restart");
    assert_eq!(
        session.execute(GROUPED_MAX).expect("execute").rows,
        rows,
        "answers survive restart"
    );
    // And the recovered session keeps committing where it left off.
    session.insert(fact!("R", "x9", "y1")).expect("insert");
    assert_eq!(session.epoch(), epoch + 1);
}

/// Interleaved inserts and deletes across a restart: the pre-crash warm
/// session interned its values in commit order (appended ids on top of the
/// initial sorted prefix), while recovery replays the WAL into a fresh
/// session whose id layout is built from scratch. The two layouts are
/// legitimately different — the contract is that answers are byte-identical
/// anyway, warm vs recovered vs cold, at 1 and 4 executor threads.
#[test]
fn recovery_after_interleaved_out_of_order_writes_matches_warm_answers() {
    let mem = MemStorage::new();
    let warm_rows = {
        let session = Session::open_storage(rs_catalog(), Box::new(mem.handle()), mem_options())
            .expect("open");
        // Warm the index first so the interleaving runs on the delta path.
        session.execute(GROUPED_MAX).expect("warm-up");
        // Inserts arrive in anti-sorted order ("x…" before "a…"), so the
        // warm session's appended ids invert value order; deletes hit both
        // generations, and one deleted fact is re-inserted.
        session.insert(fact!("R", "x5", "y1")).expect("insert");
        session
            .insert_all([
                fact!("S", "y1", "z1", 9),
                fact!("R", "m3", "y1"),
                Fact::new("S", [Value::text("b0"), Value::text("z0"), Value::int(4)]),
            ])
            .expect("batch");
        session.insert(fact!("R", "a0", "b0")).expect("insert");
        assert!(session.delete(&fact!("R", "m3", "y1")).expect("delete"));
        session.insert(fact!("R", "m3", "b0")).expect("insert");
        assert!(session.delete(&fact!("R", "x5", "y1")).expect("delete"));
        session.sync().expect("sync");
        session.execute(GROUPED_MAX).expect("warm execute").rows
    };

    let recovered = Session::open_storage(rs_catalog(), Box::new(mem.handle()), mem_options())
        .expect("recover");
    assert_eq!(
        recovered
            .execute(GROUPED_MAX)
            .expect("recovered execute")
            .rows,
        warm_rows,
        "recovered answers differ from the pre-crash warm session"
    );
    assert_answers_match_cold(&recovered, &recovered.database());

    // The recovered session keeps interleaving — and a second recovery over
    // the longer log still agrees with it.
    recovered.insert(fact!("R", "a1", "y1")).expect("insert");
    assert!(recovered.delete(&fact!("R", "a0", "b0")).expect("delete"));
    let warm_rows = recovered.execute(GROUPED_MAX).expect("execute").rows;
    drop(recovered);
    let again = Session::open_storage(rs_catalog(), Box::new(mem.handle()), mem_options())
        .expect("recover again");
    assert_eq!(again.execute(GROUPED_MAX).expect("execute").rows, warm_rows);
    assert_answers_match_cold(&again, &again.database());
}

#[test]
fn torn_tail_recovers_the_committed_prefix_and_serves_on() {
    let mem = MemStorage::new();
    let session =
        Session::open_storage(rs_catalog(), Box::new(mem.handle()), mem_options()).expect("open");
    session.insert(fact!("R", "x1", "y1")).expect("insert");
    session.insert(fact!("S", "y1", "z1", 5)).expect("insert");
    drop(session);

    // Crash mid-append: cut the segment a few bytes short of the second
    // record's end.
    let name = segment_name(0);
    let bytes = mem.file(&name).expect("segment exists");
    mem.set_file(&name, bytes[..bytes.len() - 3].to_vec());

    let session =
        Session::open_storage(rs_catalog(), Box::new(mem.handle()), mem_options()).expect("reopen");
    assert_eq!(session.epoch(), 1, "only the first commit survives");
    assert!(session.database().contains(&fact!("R", "x1", "y1")));
    assert!(!session.database().contains(&fact!("S", "y1", "z1", 5)));

    // The recovered session accepts new commits, and *they* survive too.
    session.insert(fact!("S", "y1", "z1", 7)).expect("insert");
    drop(session);
    let session =
        Session::open_storage(rs_catalog(), Box::new(mem.handle()), mem_options()).expect("reopen");
    assert_eq!(session.epoch(), 2);
    assert!(session.database().contains(&fact!("S", "y1", "z1", 7)));
}

#[test]
fn interior_corruption_is_refused_not_truncated() {
    let mem = MemStorage::new();
    let session =
        Session::open_storage(rs_catalog(), Box::new(mem.handle()), mem_options()).expect("open");
    session.insert(fact!("R", "x1", "y1")).expect("insert");
    session.insert(fact!("R", "x2", "y2")).expect("insert");
    drop(session);

    // Flip one byte inside the FIRST record while a valid record follows:
    // that is interior damage, not a crash artefact.
    let name = segment_name(0);
    let mut bytes = mem.file(&name).expect("segment exists");
    bytes[10] ^= 0x40;
    mem.set_file(&name, bytes);

    let err = Session::open_storage(rs_catalog(), Box::new(mem.handle()), mem_options())
        .expect_err("interior corruption must refuse recovery");
    match err {
        SessionError::Wal(WalError::Corrupt { file, .. }) => assert_eq!(file, name),
        other => panic!("expected Wal(Corrupt), got {other:?}"),
    }
}

#[test]
fn append_failure_degrades_writes_but_never_reads() {
    // Seed some committed state.
    let mem = MemStorage::new();
    let session =
        Session::open_storage(rs_catalog(), Box::new(mem.handle()), mem_options()).expect("open");
    session.insert(fact!("R", "x1", "y1")).expect("insert");
    session.insert(fact!("S", "y1", "z1", 5)).expect("insert");
    let rows = session.execute(GROUPED_MAX).expect("execute").rows;
    drop(session);

    // Remount on storage that tears the next write after 4 bytes.
    let failing = FailingStorage::new(mem.handle()).with_byte_budget(4);
    let session =
        Session::open_storage(rs_catalog(), Box::new(failing), mem_options()).expect("recover");
    assert_eq!(session.epoch(), 2);

    let err = session
        .insert(fact!("R", "x7", "y2"))
        .expect_err("append must fail");
    assert!(matches!(err, SessionError::Io(_)), "got {err:?}");
    let source = std::error::Error::source(&err).expect("Io chains its source");
    assert!(source.downcast_ref::<std::io::Error>().is_some());

    // Nothing was published: the failed fact is invisible, answers are
    // unchanged, and reads keep working.
    assert_eq!(session.epoch(), 2);
    assert!(!session.database().contains(&fact!("R", "x7", "y2")));
    assert_eq!(session.execute(GROUPED_MAX).expect("execute").rows, rows);

    // A no-op commit (deleting an absent fact) logs nothing, so it still
    // succeeds even on dead storage.
    assert!(!session.delete(&fact!("R", "nope", "y1")).expect("no-op"));

    // The torn prefix was rolled back: the log still recovers to exactly
    // the acknowledged state.
    let session =
        Session::open_storage(rs_catalog(), Box::new(mem.handle()), mem_options()).expect("reopen");
    assert_eq!(session.epoch(), 2);
    assert_eq!(session.execute(GROUPED_MAX).expect("execute").rows, rows);
}

#[test]
fn checkpoints_prune_the_log_and_recover_atomically() {
    let mem = MemStorage::new();
    let options = WalOptions {
        sync: SyncPolicy::Always,
        checkpoint_every: 3,
        retain_checkpoints: 2,
    };
    let session =
        Session::open_storage(rs_catalog(), Box::new(mem.handle()), options).expect("open");
    let mut mirror = DatabaseInstance::new(rs_catalog().schema());
    for draw in 0..20u64 {
        let f = pool_fact(draw * 3);
        session.insert(f.clone()).expect("insert");
        mirror.insert(f).expect("mirror insert");
    }
    let stats = session.stats();
    assert!(stats.checkpoints >= 2, "stats: {stats:?}");
    assert_eq!(stats.checkpoint_failures, 0);
    let epoch = session.epoch();
    drop(session);

    // Early segments were pruned once checkpoints covered them...
    assert!(
        mem.file(&segment_name(0)).is_none(),
        "the initial segment should have been evicted"
    );
    // ...and recovery over checkpoint + tail reproduces the exact state.
    let session =
        Session::open_storage(rs_catalog(), Box::new(mem.handle()), options).expect("reopen");
    assert_eq!(session.epoch(), epoch);
    assert_eq!(**session.snapshot().db(), mirror);
    assert_answers_match_cold(&session, &Arc::new(mirror));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The central crash-recovery property. A random interleaving of
    /// `insert`, `insert_all`, and `delete` commits runs against a durable
    /// session; the WAL is then killed at an **arbitrary byte offset** and
    /// the session reopened. The recovered state must be exactly the state
    /// after a prefix of the committed batches (whole batches, in order),
    /// and its answers byte-identical to a cold in-memory session over that
    /// prefix at 1 and 4 executor threads.
    #[test]
    fn crash_at_any_byte_offset_recovers_a_committed_batch_prefix(
        ops in proptest::collection::vec((0u64..6, 0u64..1_000_000), 1..10),
        cut_frac in 0u64..10_000,
    ) {
        let mem = MemStorage::new();
        let session =
            Session::open_storage(rs_catalog(), Box::new(mem.handle()), mem_options())
                .expect("open");
        // The test's own log mirror: every *effective* event, in commit
        // order, plus the cumulative count at each commit boundary.
        let mut log: Vec<DeltaEvent> = Vec::new();
        let mut boundaries: Vec<usize> = vec![0];
        let mut mirror = DatabaseInstance::new(rs_catalog().schema());
        for (op, draw) in ops {
            match op {
                0 | 1 => {
                    let f = pool_fact(draw);
                    session.insert(f.clone()).expect("insert conforms");
                    if mirror.insert(f.clone()).expect("mirror insert") {
                        log.push(DeltaEvent::insert(f));
                    }
                }
                2 | 3 => {
                    let batch: Vec<Fact> = (0..(2 + draw % 16))
                        .map(|i| pool_fact(draw.wrapping_add(i * 37)))
                        .collect();
                    session.insert_all(batch.clone()).expect("batch conforms");
                    for f in batch {
                        if mirror.insert(f.clone()).expect("mirror insert") {
                            log.push(DeltaEvent::insert(f));
                        }
                    }
                }
                _ => {
                    let f = pool_fact(draw);
                    let removed = session.delete(&f).expect("delete");
                    prop_assert_eq!(removed, mirror.remove(&f));
                    if removed {
                        log.push(DeltaEvent::delete(f));
                    }
                }
            }
            if boundaries.last() != Some(&log.len()) {
                boundaries.push(log.len());
            }
            prop_assert_eq!(session.epoch() as usize, log.len());
        }
        drop(session);

        // Crash: cut the (single) segment at an arbitrary byte offset.
        let name = segment_name(0);
        let bytes = mem.file(&name).unwrap_or_default();
        let cut = (bytes.len() * cut_frac as usize) / 10_000;
        mem.set_file(&name, bytes[..cut].to_vec());

        let recovered =
            Session::open_storage(rs_catalog(), Box::new(mem.handle()), mem_options())
                .expect("a cut tail is a torn tail: recovery must succeed");
        let survived = recovered.epoch() as usize;
        prop_assert!(
            boundaries.contains(&survived),
            "recovered epoch {} is not a commit boundary ({:?})",
            survived,
            boundaries
        );

        // Rebuild the expected instance from the surviving event prefix;
        // every logged event must replay effectively.
        let mut expected = DatabaseInstance::new(rs_catalog().schema());
        for event in &log[..survived] {
            prop_assert!(expected.apply(event.clone()).expect("replay").is_some());
        }
        prop_assert_eq!(&**recovered.snapshot().db(), &expected);
        assert_answers_match_cold(&recovered, &Arc::new(expected));
    }
}
