//! Property test for the block-sharded parallel executor: on generator-driven
//! instances, evaluating at 2, 4, and 8 worker threads returns **identical**
//! `GroupRange` / bound vectors to the sequential plan (1 thread), across
//! every rewriting-backed `(aggregate, bound)` pair — same group keys, same
//! values, same methods, same order.

use rcqa::core::engine::{EngineOptions, GroupRange, Method, RangeCqa};
use rcqa::core::rewrite::BoundKind;
use rcqa::data::Value;
use rcqa::gen::JoinWorkload;
use rcqa::query::parse_agg_query;

/// Grouped query per rewriting-backed aggregate, with the bounds that are
/// rewriting-backed for it over the join workload's schema (`R(x, y)`,
/// `S(y, z, r)` with non-negative `r`).
const REWRITABLE_GROUPED: &[(&str, &[BoundKind])] = &[
    ("(x, SUM(r)) <- R(x, y), S(y, z, r)", &[BoundKind::Glb]),
    ("(x, COUNT(*)) <- R(x, y), S(y, z, r)", &[BoundKind::Glb]),
    (
        "(x, MAX(r)) <- R(x, y), S(y, z, r)",
        &[BoundKind::Glb, BoundKind::Lub],
    ),
    (
        "(x, MIN(r)) <- R(x, y), S(y, z, r)",
        &[BoundKind::Glb, BoundKind::Lub],
    ),
];

fn workloads() -> impl Iterator<Item = JoinWorkload> {
    [
        (21u64, 0.0, 5usize),
        (22, 0.2, 9),
        (23, 0.4, 16),
        (24, 0.6, 11),
        (25, 0.3, 24),
        (26, 0.5, 7),
    ]
    .into_iter()
    .map(|(seed, ratio, r_blocks)| JoinWorkload {
        r_blocks,
        y_domain: (r_blocks / 2).max(2),
        s_blocks_per_y: 3,
        inconsistency_ratio: ratio,
        block_size: 2,
        max_value: 40,
        seed,
    })
}

fn engine(text: &str, cfg: &JoinWorkload, threads: usize) -> RangeCqa {
    let query = parse_agg_query(text).unwrap();
    RangeCqa::new(&query, &cfg.schema())
        .unwrap()
        .with_options(EngineOptions {
            threads,
            ..EngineOptions::default()
        })
}

#[test]
fn parallel_executor_matches_sequential_per_bound() {
    for cfg in workloads() {
        let db = cfg.generate();
        for &(text, bounds) in REWRITABLE_GROUPED {
            for &bound in bounds {
                let baseline: Vec<(Vec<Value>, _)> = match bound {
                    BoundKind::Glb => engine(text, &cfg, 1).glb(&db).unwrap(),
                    BoundKind::Lub => engine(text, &cfg, 1).lub(&db).unwrap(),
                };
                assert!(
                    baseline
                        .iter()
                        .all(|(_, a)| a.method != Method::ExactEnumeration),
                    "{text} {bound:?} must be rewriting-backed (seed {})",
                    cfg.seed
                );
                for threads in [2usize, 4, 8] {
                    let parallel = match bound {
                        BoundKind::Glb => engine(text, &cfg, threads).glb(&db).unwrap(),
                        BoundKind::Lub => engine(text, &cfg, threads).lub(&db).unwrap(),
                    };
                    assert_eq!(
                        parallel, baseline,
                        "{text} {bound:?} at {threads} threads diverges from \
                         sequential (seed {})",
                        cfg.seed
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_executor_matches_sequential_full_ranges() {
    // MIN and MAX are rewriting-backed on both bounds, so the whole
    // GroupRange vector (keys, both bounds, methods) must be identical.
    for cfg in workloads() {
        let db = cfg.generate();
        for text in [
            "(x, MAX(r)) <- R(x, y), S(y, z, r)",
            "(x, MIN(r)) <- R(x, y), S(y, z, r)",
        ] {
            let baseline: Vec<GroupRange> = engine(text, &cfg, 1).range(&db).unwrap();
            for threads in [2usize, 4, 8] {
                let parallel = engine(text, &cfg, threads).range(&db).unwrap();
                assert_eq!(
                    parallel, baseline,
                    "{text} range at {threads} threads diverges (seed {})",
                    cfg.seed
                );
            }
        }
    }
}

#[test]
fn env_override_is_respected_and_agrees() {
    // RCQA_THREADS drives the default worker count; an explicit option wins.
    // (Set/removed in one test to avoid races with parallel test threads —
    // this is the only test in the binary touching the variable.)
    let cfg = workloads().next().unwrap();
    let db = cfg.generate();
    let text = "(x, MAX(r)) <- R(x, y), S(y, z, r)";
    let baseline = engine(text, &cfg, 1).range(&db).unwrap();

    // Preserve whatever the harness (e.g. the CI RCQA_THREADS matrix) set, so
    // later tests in this process still see the intended default.
    let saved = std::env::var("RCQA_THREADS").ok();
    std::env::set_var("RCQA_THREADS", "3");
    let via_env = engine(text, &cfg, 0).range(&db).unwrap();
    // The env var drives the auto default; an explicit thread count wins.
    assert_eq!(EngineOptions::default().resolve_threads(), 3);
    let explicit = EngineOptions {
        threads: 1,
        ..EngineOptions::default()
    };
    assert_eq!(explicit.resolve_threads(), 1);
    match saved {
        Some(value) => std::env::set_var("RCQA_THREADS", value),
        None => std::env::remove_var("RCQA_THREADS"),
    }

    assert_eq!(via_env, baseline);
}
