//! Property-based integration tests: on random small inconsistent databases,
//! the rewriting-based engine must agree with exhaustive repair enumeration
//! for every aggregate and bound it claims to support.

use proptest::prelude::*;
use rcqa::core::engine::RangeCqa;
use rcqa::core::exact::exact_bounds;
use rcqa::core::prepared::PreparedAggQuery;
use rcqa::data::{DatabaseInstance, Fact, Schema, Signature, Value};
use rcqa::query::parse_agg_query;

/// The Fig. 3 schema: R(x, y) with key x, S(y, z, r) with key (y, z).
fn schema() -> Schema {
    Schema::new()
        .with_relation("R", Signature::new(2, 1, []).unwrap())
        .with_relation("S", Signature::new(3, 2, [2]).unwrap())
}

/// Strategy generating small random inconsistent instances over the schema.
fn small_instance() -> impl Strategy<Value = DatabaseInstance> {
    let r_facts = proptest::collection::vec((0u8..4, 0u8..4), 0..8);
    let s_facts = proptest::collection::vec((0u8..4, 0u8..3, 0i64..20), 0..10);
    (r_facts, s_facts).prop_map(|(rs, ss)| {
        let mut db = DatabaseInstance::new(schema());
        for (x, y) in rs {
            let _ = db.insert(Fact::new(
                "R",
                [Value::text(format!("x{x}")), Value::text(format!("y{y}"))],
            ));
        }
        for (y, z, r) in ss {
            let _ = db.insert(Fact::new(
                "S",
                [
                    Value::text(format!("y{y}")),
                    Value::text(format!("z{z}")),
                    Value::int(r),
                ],
            ));
        }
        db
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GLB and LUB of SUM / COUNT / MIN / MAX computed by the engine agree
    /// with exhaustive repair enumeration.
    #[test]
    fn engine_agrees_with_repair_enumeration(db in small_instance()) {
        prop_assume!(db.repair_count().unwrap_or(u128::MAX) <= 4096);
        for text in [
            "SUM(r) <- R(x, y), S(y, z, r)",
            "COUNT(*) <- R(x, y), S(y, z, r)",
            "MIN(r) <- R(x, y), S(y, z, r)",
            "MAX(r) <- R(x, y), S(y, z, r)",
        ] {
            let query = parse_agg_query(text).unwrap();
            let engine = RangeCqa::new(&query, &schema()).unwrap();
            let prepared = PreparedAggQuery::new(&query, &schema()).unwrap();
            let exact = exact_bounds(&prepared, &db, 1 << 20).unwrap();
            let glb = engine.glb(&db).unwrap()[0].1.value;
            let lub = engine.lub(&db).unwrap()[0].1.value;
            prop_assert_eq!(glb, exact.glb, "glb mismatch for {} on {:?}", text, db);
            prop_assert_eq!(lub, exact.lub, "lub mismatch for {} on {:?}", text, db);
        }
    }

    /// The single-relation query SUM(r) <- S(y, z, r): the glb picks the
    /// minimum value in every block, the lub the maximum.
    #[test]
    fn single_relation_sum_bounds(db in small_instance()) {
        prop_assume!(db.repair_count().unwrap_or(u128::MAX) <= 4096);
        let query = parse_agg_query("SUM(r) <- S(y, z, r)").unwrap();
        let engine = RangeCqa::new(&query, &schema()).unwrap();
        let prepared = PreparedAggQuery::new(&query, &schema()).unwrap();
        let exact = exact_bounds(&prepared, &db, 1 << 20).unwrap();
        let glb = engine.glb(&db).unwrap()[0].1.value;
        prop_assert_eq!(glb, exact.glb);
        // Direct characterisation: sum of per-block minima (or ⊥ when S is
        // empty).
        let blocks = db.blocks_of("S");
        if blocks.is_empty() {
            prop_assert_eq!(glb, None);
        } else {
            let expected = blocks
                .iter()
                .map(|b| {
                    b.facts
                        .iter()
                        .filter_map(|f| f.arg(2).as_num())
                        .min()
                        .unwrap()
                })
                .fold(rcqa::data::Rational::ZERO, |acc, v| acc + v);
            prop_assert_eq!(glb, Some(expected));
        }
    }

    /// Consistent databases have exactly one repair, so glb = lub = the plain
    /// query answer.
    #[test]
    fn consistent_database_collapses_the_range(db in small_instance()) {
        let repaired = db.any_repair();
        prop_assert!(repaired.is_consistent());
        let query = parse_agg_query("SUM(r) <- R(x, y), S(y, z, r)").unwrap();
        let engine = RangeCqa::new(&query, &schema()).unwrap();
        let glb = engine.glb(&repaired).unwrap()[0].1.value;
        let lub = engine.lub(&repaired).unwrap()[0].1.value;
        prop_assert_eq!(glb, lub);
    }
}
