//! End-to-end coverage of the widened SQL surface through the session
//! facade: comparison predicates in WHERE, HAVING over aggregate intervals,
//! ORDER BY … LIMIT (certain top-k), multi-aggregate SELECTs, statically
//! contradictory WHERE clauses, and the conservative result-cache
//! invalidation rule for all of these shapes.

use rcqa::core::engine::EngineOptions;
use rcqa::data::{fact, rat};
use rcqa::query::QueryError;
use rcqa::query::{Catalog, TableDef};
use rcqa::session::{HavingStatus, Session, SessionError};

fn fig1_session() -> Session {
    let catalog = Catalog::new()
        .with_table(TableDef::new("Dealers").key_column("Name").column("Town"))
        .with_table(
            TableDef::new("Stock")
                .key_column("Product")
                .key_column("Town")
                .numeric_column("Qty"),
        );
    let session = Session::new(catalog);
    session
        .insert_all([
            fact!("Dealers", "Smith", "Boston"),
            fact!("Dealers", "Smith", "New York"),
            fact!("Dealers", "James", "Boston"),
            fact!("Stock", "Tesla X", "Boston", 35),
            fact!("Stock", "Tesla X", "Boston", 40),
            fact!("Stock", "Tesla Y", "Boston", 35),
            fact!("Stock", "Tesla Y", "New York", 95),
            fact!("Stock", "Tesla Y", "New York", 96),
        ])
        .unwrap();
    session
}

#[test]
fn where_comparisons_through_the_facade() {
    let session = fig1_session();
    // A residual predicate on the aggregated value column: only stock rows
    // under 95 count. James keeps Boston's [70, 75]; Smith's New York repair
    // has no qualifying stock at all, so Smith's interval collapses to ⊥.
    let outcome = session
        .execute(
            "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town AND S.Qty < 95 GROUP BY D.Name",
        )
        .unwrap();
    assert_eq!(outcome.rows.len(), 2);
    let james = &outcome.rows[0];
    assert_eq!(james.key[0].to_string(), "James");
    assert_eq!(james.glb.unwrap().value, Some(rat(70)));
    assert_eq!(james.lub.unwrap().value, Some(rat(75)));
    let smith = &outcome.rows[1];
    assert_eq!(smith.key[0].to_string(), "Smith");
    assert_eq!(smith.glb.unwrap().value, None, "⊥: some repair is empty");
    assert_eq!(smith.lub.unwrap().value, None);

    // A comparison on the GROUP BY key filters whole groups before any
    // engine runs; the surviving group keeps its unrestricted interval.
    let outcome = session
        .execute(
            "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town AND D.Name > 'James' GROUP BY D.Name",
        )
        .unwrap();
    assert_eq!(outcome.rows.len(), 1);
    assert_eq!(outcome.rows[0].key[0].to_string(), "Smith");
    assert_eq!(outcome.rows[0].glb.unwrap().value, Some(rat(70)));
    assert_eq!(outcome.rows[0].lub.unwrap().value, Some(rat(96)));
}

#[test]
fn having_reports_the_trichotomy_and_drops_violated_rows() {
    let session = fig1_session();
    // James's SUM interval is [70, 75], Smith's [70, 96].
    let base = "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                WHERE D.Town = S.Town GROUP BY D.Name";

    // Certain for both: every repair exceeds 60.
    let outcome = session
        .execute(&format!("{base} HAVING SUM(S.Qty) > 60"))
        .unwrap();
    assert_eq!(outcome.rows.len(), 2);
    assert_eq!(outcome.having.as_ref(), &[HavingStatus::Certain; 2]);

    // At 80 James is violated in every repair (lub 75 < 80) and vanishes;
    // Smith straddles the threshold, so the condition is only possible.
    let outcome = session
        .execute(&format!("{base} HAVING SUM(S.Qty) >= 80"))
        .unwrap();
    assert_eq!(outcome.rows.len(), 1);
    assert_eq!(outcome.rows[0].key[0].to_string(), "Smith");
    assert_eq!(outcome.having.as_ref(), &[HavingStatus::Possible]);

    // The trichotomy is a first-class output column in the rendered table.
    let table = outcome.to_table();
    assert!(table.contains("having"), "{table}");
    assert!(table.contains("possible"), "{table}");
}

#[test]
fn certain_topk_returns_only_rows_that_win_in_every_repair() {
    let session = fig1_session();
    // A consistent dealer whose stock dwarfs everyone: certainly the top 1.
    session
        .insert_all([
            fact!("Dealers", "Quinn", "Chicago"),
            fact!("Stock", "Bolt", "Chicago", 200),
        ])
        .unwrap();
    let base = "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                WHERE D.Town = S.Town GROUP BY D.Name ORDER BY SUM(S.Qty) DESC";

    let top1 = session.execute(&format!("{base} LIMIT 1")).unwrap();
    assert_eq!(top1.rows.len(), 1);
    assert_eq!(top1.rows[0].key[0].to_string(), "Quinn");
    assert_eq!(top1.rows[0].glb.unwrap().value, Some(rat(200)));

    // James [70, 75] and Smith [70, 96] overlap, so neither certainly holds
    // the second slot — the honest top-2 is still just Quinn.
    let top2 = session.execute(&format!("{base} LIMIT 2")).unwrap();
    assert_eq!(
        top2.rows.len(),
        1,
        "overlapping intervals leave slot 2 open"
    );

    // With k covering every possible ordering, all three rows are certain,
    // in deterministic interval order.
    let top3 = session.execute(&format!("{base} LIMIT 3")).unwrap();
    let names: Vec<String> = top3.rows.iter().map(|r| r.key[0].to_string()).collect();
    assert_eq!(names, ["Quinn", "Smith", "James"]);

    // Without LIMIT, ORDER BY is a presentation order over all rows.
    let ordered = session.execute(base).unwrap();
    let names: Vec<String> = ordered.rows.iter().map(|r| r.key[0].to_string()).collect();
    assert_eq!(names, ["Quinn", "Smith", "James"]);
}

#[test]
fn multi_aggregate_select_aligns_rows() {
    let session = fig1_session();
    let outcome = session
        .execute(
            "SELECT D.Name, SUM(S.Qty), COUNT(*) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town GROUP BY D.Name",
        )
        .unwrap();
    assert_eq!(outcome.columns, ["Name", "SUM", "COUNT"]);
    assert_eq!(outcome.rows.len(), 2);
    assert_eq!(outcome.more_aggregates.len(), 1);
    let counts = &outcome.more_aggregates[0];
    assert_eq!(counts.len(), 2);
    for (row, count) in outcome.rows.iter().zip(counts.iter()) {
        assert_eq!(row.key, count.key, "row-aligned group keys");
    }
    // James always joins 2 Boston products; Smith joins 2 in Boston or 1 in
    // New York.
    assert_eq!(counts[0].glb.unwrap().value, Some(rat(2)));
    assert_eq!(counts[0].lub.unwrap().value, Some(rat(2)));
    assert_eq!(counts[1].glb.unwrap().value, Some(rat(1)));
    assert_eq!(counts[1].lub.unwrap().value, Some(rat(2)));
    // Both aggregates are named in the rendered table.
    let table = outcome.to_table();
    assert!(table.contains("glb(SUM)"), "{table}");
    assert!(table.contains("lub(COUNT)"), "{table}");
}

#[test]
fn contradictory_where_is_answered_statically() {
    let session = fig1_session();
    // Closed query: the single row is [⊥, ⊥] — no repair satisfies the body.
    let outcome = session
        .execute("SELECT SUM(S.Qty) FROM Stock AS S WHERE S.Town = 'b' AND S.Town < 'a'")
        .unwrap();
    assert_eq!(outcome.rows.len(), 1);
    assert_eq!(outcome.rows[0].glb.unwrap().value, None);
    assert_eq!(outcome.rows[0].lub.unwrap().value, None);
    // Grouped query: no group is even a possible answer.
    let outcome = session
        .execute(
            "SELECT S.Product, SUM(S.Qty) FROM Stock AS S \
             WHERE S.Town = 'b' AND S.Town < 'a' GROUP BY S.Product",
        )
        .unwrap();
    assert!(outcome.rows.is_empty());
    let plan = session
        .explain("SELECT SUM(S.Qty) FROM Stock AS S WHERE S.Town = 'b' AND S.Town < 'a'")
        .unwrap();
    assert!(plan.contains("contradictory WHERE clause"), "{plan}");
}

#[test]
fn unexecutable_shapes_fail_with_precise_errors() {
    let session = fig1_session();
    for (sql, needle) in [
        (
            "SELECT S.Town, SUM(S.Qty) FROM Stock AS S GROUP BY S.Town ORDER BY S.Town",
            "ORDER BY column",
        ),
        (
            "SELECT SUM(S.Qty) FROM Stock AS S LIMIT 5",
            "LIMIT without ORDER BY",
        ),
        (
            "SELECT S.Town, SUM(S.Qty) FROM Stock AS S GROUP BY S.Town HAVING S.Town = 'a'",
            "non-aggregate",
        ),
    ] {
        match session.execute(sql) {
            Err(SessionError::Query(QueryError::Unsupported(msg))) => {
                assert!(msg.contains(needle), "{sql}: {msg}")
            }
            other => panic!("{sql}: expected Unsupported, got {other:?}"),
        }
    }
}

#[test]
fn explain_documents_access_path_and_post_processing() {
    let session = fig1_session();
    // A pushable key predicate turns the leaf into a Seek with a statistics
    // estimate; HAVING and certain top-k appear as post-processing steps.
    let plan = session
        .explain(
            "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town AND D.Name >= 'Smith' GROUP BY D.Name \
             HAVING MAX(S.Qty) > 50 ORDER BY MAX(S.Qty) DESC LIMIT 2",
        )
        .unwrap();
    assert!(plan.contains("Seek"), "{plan}");
    assert!(plan.contains("est"), "{plan}");
    assert!(
        plan.contains("post-process: HAVING aggregate #0 >"),
        "{plan}"
    );
    assert!(plan.contains("certain top-2"), "{plan}");
    // Hidden HAVING aggregates are labelled as such.
    let plan = session
        .explain(
            "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town GROUP BY D.Name HAVING COUNT(*) >= 1",
        )
        .unwrap();
    assert!(plan.contains("hidden: HAVING/ORDER BY only"), "{plan}");
}

#[test]
fn rich_statements_invalidate_conservatively_on_writes() {
    // Satellite regression: statements without a group-locality certificate
    // (anything with predicates / HAVING / ORDER BY / several aggregates)
    // must answer correctly after a mutation — via a full recompute, never a
    // dirty-group patch — at every worker count.
    for threads in [1usize, 4] {
        let session = fig1_session().with_options(EngineOptions {
            threads,
            ..EngineOptions::default()
        });
        let sql = "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town GROUP BY D.Name HAVING SUM(S.Qty) >= 80";
        let before = session.execute(sql).unwrap();
        assert_eq!(before.rows.len(), 1, "{threads} threads");
        assert_eq!(before.rows[0].key[0].to_string(), "Smith");
        assert_eq!(before.having.as_ref(), &[HavingStatus::Possible]);

        // New consistent Boston stock lifts James past the threshold in
        // every repair and pins Smith's glb to New York's 95.
        session
            .insert(fact!("Stock", "Tesla Z", "Boston", 50))
            .unwrap();
        let after = session.execute(sql).unwrap();
        assert_eq!(after.rows.len(), 2, "{threads} threads");
        assert_eq!(after.rows[0].key[0].to_string(), "James");
        assert_eq!(after.rows[0].glb.unwrap().value, Some(rat(120)));
        assert_eq!(after.rows[0].lub.unwrap().value, Some(rat(125)));
        assert_eq!(
            after.having.as_ref(),
            &[HavingStatus::Certain, HavingStatus::Certain]
        );

        let stats = session.stats();
        assert_eq!(stats.full_recomputes, 2, "{threads} threads");
        assert_eq!(
            stats.partial_recomputes, 0,
            "{threads} threads: a post-processed result must never be patched"
        );

        // Byte identity with a cold session over the same final state.
        let cold = fig1_session().with_options(EngineOptions {
            threads,
            ..EngineOptions::default()
        });
        cold.insert(fact!("Stock", "Tesla Z", "Boston", 50))
            .unwrap();
        let cold_outcome = cold.execute(sql).unwrap();
        assert_eq!(cold_outcome.rows, after.rows, "{threads} threads");
        assert_eq!(
            cold_outcome.to_table(),
            after.to_table(),
            "{threads} threads"
        );
    }
}
