//! Property-based agreement tests for the widened SQL surface: on random
//! small inconsistent instances, comparison predicates, HAVING trichotomies,
//! and certain top-k selections must agree with exhaustive repair
//! enumeration — identically at every thread count, on both access-path
//! arms, and across warm / cold / crash-recovered sessions.

use proptest::prelude::*;
use rcqa::core::engine::{BoundAnswer, EngineOptions, GroupRange, Method, RangeCqa};
use rcqa::core::exact::exact_bounds_by_group_filtered;
use rcqa::core::prepared::PreparedAggQuery;
use rcqa::core::{certain_topk, having_status, HavingStatus};
use rcqa::data::{rat, DatabaseInstance, Fact, Rational, Schema, Signature, Value};
use rcqa::query::{parse_agg_query, Catalog, CmpOp, TableDef, Var, VarPredicate};
use rcqa::session::Session;
use rcqa::session::{SyncPolicy, WalOptions};
use rcqa::wal::MemStorage;

/// The Fig. 3 schema: R(x, y) with key x, S(y, z, r) with key (y, z).
fn schema() -> Schema {
    Schema::new()
        .with_relation("R", Signature::new(2, 1, []).unwrap())
        .with_relation("S", Signature::new(3, 2, [2]).unwrap())
}

/// The same schema as a SQL catalog.
fn catalog() -> Catalog {
    Catalog::new()
        .with_table(TableDef::new("R").key_column("X").column("Y"))
        .with_table(
            TableDef::new("S")
                .key_column("Y")
                .key_column("Z")
                .numeric_column("Qty"),
        )
}

/// Strategy generating small random inconsistent instances over the schema.
fn small_instance() -> impl Strategy<Value = DatabaseInstance> {
    let r_facts = proptest::collection::vec((0u8..4, 0u8..4), 0..8);
    let s_facts = proptest::collection::vec((0u8..4, 0u8..3, 0i64..20), 0..10);
    (r_facts, s_facts).prop_map(|(rs, ss)| {
        let mut db = DatabaseInstance::new(schema());
        for (x, y) in rs {
            let _ = db.insert(Fact::new(
                "R",
                [Value::text(format!("x{x}")), Value::text(format!("y{y}"))],
            ));
        }
        for (y, z, r) in ss {
            let _ = db.insert(Fact::new(
                "S",
                [
                    Value::text(format!("y{y}")),
                    Value::text(format!("z{z}")),
                    Value::int(r),
                ],
            ));
        }
        db
    })
}

/// A pool of predicates exercising every routing class: free group key
/// (block-pushable), non-free key positions (pushable, including the
/// non-contiguous `Ne`), and the value column at no key position (residual —
/// forces the exact fallback).
fn predicate_pool() -> Vec<VarPredicate> {
    let text = |n: &str, op, v: &str| VarPredicate {
        var: Var::new(n),
        op,
        value: Value::text(v),
    };
    let num = |n: &str, op, v: i64| VarPredicate {
        var: Var::new(n),
        op,
        value: Value::int(v),
    };
    vec![
        text("x", CmpOp::Gt, "x1"),
        text("x", CmpOp::Le, "x2"),
        text("y", CmpOp::Ne, "y1"),
        text("y", CmpOp::Lt, "y2"),
        text("z", CmpOp::Ge, "z1"),
        num("r", CmpOp::Lt, 10),
        num("r", CmpOp::Ge, 5),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every predicate routing class agrees with the filtered repair
    /// enumeration oracle, byte-identically at 1/2/4/8 threads and on both
    /// the seek and the forced-scan arm.
    #[test]
    fn predicates_agree_with_repair_enumeration(
        db in small_instance(),
        choice in 0usize..7,
        pair in proptest::bool::ANY,
    ) {
        prop_assume!(db.repair_count().unwrap_or(u128::MAX) <= 2048);
        let pool = predicate_pool();
        let mut preds = vec![pool[choice].clone()];
        if pair {
            // A second predicate from a different routing class.
            preds.push(pool[(choice + 3) % pool.len()].clone());
        }
        for text in ["(x, SUM(r)) <- R(x, y), S(y, z, r)", "(x, MAX(r)) <- R(x, y), S(y, z, r)"] {
            let q = parse_agg_query(text).unwrap();
            let prepared = PreparedAggQuery::new(&q, &schema()).unwrap();
            let oracle =
                exact_bounds_by_group_filtered(&prepared, &db, 1 << 20, &preds).unwrap();
            let mut reference: Option<Vec<GroupRange>> = None;
            for threads in [1usize, 2, 4, 8] {
                for force_scan in [false, true] {
                    let engine = RangeCqa::new(&q, &schema())
                        .unwrap()
                        .with_predicates(preds.clone())
                        .unwrap()
                        .with_options(EngineOptions {
                            threads,
                            force_scan,
                            ..EngineOptions::default()
                        });
                    let rows = engine.range(&db).unwrap();
                    prop_assert_eq!(rows.len(), oracle.len(), "{} {:?}", text, preds);
                    for (row, (key, bounds)) in rows.iter().zip(oracle.iter()) {
                        prop_assert_eq!(&row.key, key, "{}", text);
                        prop_assert_eq!(
                            row.glb.unwrap().value, bounds.glb,
                            "{} glb of {:?} with {:?} @{}T force_scan={}",
                            text, key, preds, threads, force_scan
                        );
                        prop_assert_eq!(
                            row.lub.unwrap().value, bounds.lub,
                            "{} lub of {:?} with {:?} @{}T force_scan={}",
                            text, key, preds, threads, force_scan
                        );
                    }
                    match &reference {
                        None => reference = Some(rows),
                        Some(first) => prop_assert_eq!(&rows, first, "{}", text),
                    }
                }
            }
        }
    }

    /// The session's HAVING trichotomy and certain top-k equal the reference
    /// pipeline applied to the *oracle's* intervals — and the answers are
    /// identical warm, cold, and crash-recovered.
    #[test]
    fn having_and_topk_agree_with_the_oracle(
        db in small_instance(),
        threshold in 0i64..40,
        k in 1usize..4,
    ) {
        prop_assume!(db.repair_count().unwrap_or(u128::MAX) <= 2048);
        let q = parse_agg_query("(x, SUM(r)) <- R(x, y), S(y, z, r)").unwrap();
        let prepared = PreparedAggQuery::new(&q, &schema()).unwrap();
        let oracle = exact_bounds_by_group_filtered(&prepared, &db, 1 << 20, &[]).unwrap();

        // Reference pipeline over oracle intervals: trichotomy, drop
        // violated, certain top-k descending.
        let statuses: Vec<HavingStatus> = oracle
            .iter()
            .map(|(_, b)| having_status(b.glb, b.lub, CmpOp::Ge, rat(threshold)))
            .collect();
        let kept: Vec<usize> = (0..oracle.len())
            .filter(|&i| statuses[i] != HavingStatus::Violated)
            .collect();
        let kept_rows: Vec<GroupRange> = kept
            .iter()
            .map(|&i| {
                let (key, b) = &oracle[i];
                let wrap = |v: Option<Rational>| {
                    Some(BoundAnswer { value: v, method: Method::Rewriting })
                };
                GroupRange { key: key.clone(), glb: wrap(b.glb), lub: wrap(b.lub) }
            })
            .collect();
        let expect: Vec<&GroupRange> = certain_topk(&kept_rows, k, true)
            .into_iter()
            .map(|j| &kept_rows[j])
            .collect();

        let sql = format!(
            "SELECT R.X, SUM(S.Qty) FROM R, S WHERE R.Y = S.Y GROUP BY R.X \
             HAVING SUM(S.Qty) >= {threshold} ORDER BY SUM(S.Qty) DESC LIMIT {k}"
        );
        let mem = MemStorage::new();
        let wal_options = WalOptions {
            sync: SyncPolicy::Never,
            checkpoint_every: 0,
            ..WalOptions::default()
        };
        let warm = Session::open_storage(catalog(), Box::new(mem.handle()), wal_options)
            .unwrap();
        for fact in db.facts() {
            warm.insert(fact.clone()).unwrap();
        }
        let outcome = warm.execute(&sql).unwrap();
        prop_assert_eq!(outcome.rows.len(), expect.len(), "{}", sql);
        for (row, exp) in outcome.rows.iter().zip(expect.iter()) {
            prop_assert_eq!(&row.key, &exp.key, "{}", sql);
            prop_assert_eq!(
                row.glb.unwrap().value, exp.glb.unwrap().value, "{} glb", sql
            );
            prop_assert_eq!(
                row.lub.unwrap().value, exp.lub.unwrap().value, "{} lub", sql
            );
        }
        // Surfaced statuses are exactly the kept rows' trichotomy verdicts,
        // and violated never appears.
        prop_assert_eq!(outcome.having.len(), outcome.rows.len());
        for status in outcome.having.iter() {
            prop_assert!(*status != HavingStatus::Violated);
        }

        // Warm repeat, cold session, and crash-recovered session all give
        // byte-identical answers.
        let again = warm.execute(&sql).unwrap();
        prop_assert_eq!(&again.rows, &outcome.rows);
        prop_assert_eq!(&again.having, &outcome.having);
        let cold = Session::with_instance(catalog(), warm.database());
        let cold_outcome = cold.execute(&sql).unwrap();
        prop_assert_eq!(&cold_outcome.rows, &outcome.rows);
        prop_assert_eq!(&cold_outcome.having, &outcome.having);
        warm.sync().unwrap();
        let recovered =
            Session::open_storage(catalog(), Box::new(mem.handle()), wal_options).unwrap();
        let rec_outcome = recovered.execute(&sql).unwrap();
        prop_assert_eq!(&rec_outcome.rows, &outcome.rows);
        prop_assert_eq!(&rec_outcome.having, &outcome.having);
    }
}
